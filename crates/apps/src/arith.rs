//! Bulk bit-serial arithmetic built entirely from Ambit's bitwise
//! primitives — the direction the paper's conclusion gestures at ("enable
//! better design of other applications to take advantage of such
//! operations") and that follow-on work (SIMDRAM, MICRO'21) developed
//! fully.
//!
//! Integers live *vertically*: lane `l`'s bit `i` sits at position `l` of
//! bit-slice `i` (LSB first). A ripple-carry adder is then `w` rounds of
//!
//! ```text
//! sum_i  = a_i ⊕ b_i ⊕ carry        (two bulk XORs)
//! carry' = maj(a_i, b_i, carry)     (one native triple-row activation!)
//! ```
//!
//! computed across *all lanes at once* — thousands of additions per round,
//! with the carry step costing a single TRA program because majority is
//! what the DRAM physically computes.

use ambit_core::{AmbitError, AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// A vector of `lanes` unsigned integers of `width` bits each, stored
/// bit-sliced (slice 0 = LSB) in Ambit memory.
#[derive(Debug, Clone)]
pub struct BitSlicedVector {
    slices: Vec<BitVectorHandle>,
    lanes: usize,
    width: usize,
    padded: usize,
}

impl BitSlicedVector {
    /// Allocates a zeroed vector of `lanes` integers of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns out-of-memory when the device cannot hold the slices.
    pub fn alloc(mem: &mut AmbitMemory, lanes: usize, width: usize) -> Result<Self, AmbitError> {
        assert!(width > 0 && width <= 32, "width in 1..=32");
        assert!(lanes > 0, "at least one lane");
        let row = mem.row_bits();
        let padded = lanes.div_ceil(row) * row;
        let slices = (0..width)
            .map(|_| mem.alloc(padded))
            .collect::<Result<_, _>>()?;
        Ok(BitSlicedVector {
            slices,
            lanes,
            width,
            padded,
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Integer width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Bit-slice handles, LSB first (for the synthesized kernels in
    /// [`synth_arith`](crate::synth_arith)).
    pub(crate) fn slices(&self) -> &[BitVectorHandle] {
        &self.slices
    }

    /// Row-padded length of each slice in bits.
    pub(crate) fn padded(&self) -> usize {
        self.padded
    }

    /// Loads lane values (host write; values must fit in `width` bits).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or oversized values.
    pub fn write(&self, mem: &mut AmbitMemory, values: &[u32]) -> Result<(), AmbitError> {
        assert_eq!(values.len(), self.lanes, "lane count mismatch");
        for (i, &h) in self.slices.iter().enumerate() {
            let bits: Vec<bool> = (0..self.padded)
                .map(|l| {
                    l < self.lanes && {
                        let v = values[l];
                        assert!(
                            self.width == 32 || v < (1 << self.width),
                            "value {v} exceeds {} bits",
                            self.width
                        );
                        v >> i & 1 == 1
                    }
                })
                .collect();
            mem.poke_bits(h, &bits)?;
        }
        Ok(())
    }

    /// Reads all lane values back (host read).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn read(&self, mem: &AmbitMemory) -> Result<Vec<u32>, AmbitError> {
        let mut out = vec![0u32; self.lanes];
        for (i, &h) in self.slices.iter().enumerate() {
            let bits = mem.peek_bits(h)?;
            for (l, v) in out.iter_mut().enumerate() {
                if bits[l] {
                    *v |= 1 << i;
                }
            }
        }
        Ok(out)
    }

    /// Lane-wise addition: `self + other`, entirely in DRAM. Returns the
    /// result vector (same width; overflow wraps) and the operation
    /// receipt. Cost: per bit position, 2 XOR programs + 1 TRA-majority
    /// program (the carry) — all lanes in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::SizeMismatch`] on shape mismatch and
    /// propagates driver errors.
    pub fn add(
        &self,
        mem: &mut AmbitMemory,
        other: &BitSlicedVector,
    ) -> Result<(BitSlicedVector, OpReceipt), AmbitError> {
        if self.width != other.width || self.lanes != other.lanes {
            return Err(AmbitError::SizeMismatch {
                left_bits: self.width * self.lanes,
                right_bits: other.width * other.lanes,
            });
        }
        let result = BitSlicedVector::alloc(mem, self.lanes, self.width)?;
        let carry = mem.alloc(self.padded)?;
        let next_carry = mem.alloc(self.padded)?;
        let tmp = mem.alloc(self.padded)?;

        let mut total = mem.bitwise(BitwiseOp::InitZero, carry, None, carry)?;
        for i in 0..self.width {
            let a = self.slices[i];
            let b = other.slices[i];
            // sum_i = a ^ b ^ carry
            total.absorb(&mem.bitwise(BitwiseOp::Xor, a, Some(b), tmp)?);
            total.absorb(&mem.bitwise(BitwiseOp::Xor, tmp, Some(carry), result.slices[i])?);
            // carry' = maj(a, b, carry): one native TRA program.
            total.absorb(&mem.bitwise_maj3(a, b, carry, next_carry)?);
            total.absorb(&mem.bitwise(BitwiseOp::Copy, next_carry, None, carry)?);
        }
        Ok((result, total))
    }

    /// Lane-wise subtraction `self − other` (two's complement: a + !b + 1,
    /// implemented by seeding the carry with ones). Overflow wraps.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::SizeMismatch`] on shape mismatch and
    /// propagates driver errors.
    pub fn sub(
        &self,
        mem: &mut AmbitMemory,
        other: &BitSlicedVector,
    ) -> Result<(BitSlicedVector, OpReceipt), AmbitError> {
        if self.width != other.width || self.lanes != other.lanes {
            return Err(AmbitError::SizeMismatch {
                left_bits: self.width * self.lanes,
                right_bits: other.width * other.lanes,
            });
        }
        let result = BitSlicedVector::alloc(mem, self.lanes, self.width)?;
        let carry = mem.alloc(self.padded)?;
        let next_carry = mem.alloc(self.padded)?;
        let not_b = mem.alloc(self.padded)?;
        let tmp = mem.alloc(self.padded)?;

        // carry starts at 1 (the +1 of two's complement).
        let mut total = mem.bitwise(BitwiseOp::InitOne, carry, None, carry)?;
        for i in 0..self.width {
            let a = self.slices[i];
            total.absorb(&mem.bitwise(BitwiseOp::Not, other.slices[i], None, not_b)?);
            total.absorb(&mem.bitwise(BitwiseOp::Xor, a, Some(not_b), tmp)?);
            total.absorb(&mem.bitwise(BitwiseOp::Xor, tmp, Some(carry), result.slices[i])?);
            total.absorb(&mem.bitwise_maj3(a, not_b, carry, next_carry)?);
            total.absorb(&mem.bitwise(BitwiseOp::Copy, next_carry, None, carry)?);
        }
        Ok((result, total))
    }

    /// Lane-wise increment by a constant `k` (repeated halving: adds the
    /// constant's set bits with the same adder dataflow, using an
    /// in-memory constant vector).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn add_constant(
        &self,
        mem: &mut AmbitMemory,
        k: u32,
    ) -> Result<(BitSlicedVector, OpReceipt), AmbitError> {
        let constant = BitSlicedVector::alloc(mem, self.lanes, self.width)?;
        constant.write(mem, &vec![k & mask(self.width); self.lanes])?;
        self.add(mem, &constant)
    }

    /// Lane-wise unsigned comparison: returns a mask bitvector whose lane
    /// `l` is set iff `self[l] < other[l]`, plus the receipt. Classic
    /// MSB-down ladder: running `eq`/`lt` flags updated per bit position,
    /// all lanes at once.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::SizeMismatch`] on shape mismatch and
    /// propagates driver errors.
    pub fn compare_lt(
        &self,
        mem: &mut AmbitMemory,
        other: &BitSlicedVector,
    ) -> Result<(BitVectorHandle, OpReceipt), AmbitError> {
        if self.width != other.width || self.lanes != other.lanes {
            return Err(AmbitError::SizeMismatch {
                left_bits: self.width * self.lanes,
                right_bits: other.width * other.lanes,
            });
        }
        let lt = mem.alloc(self.padded)?;
        let eq = mem.alloc(self.padded)?;
        let not_a = mem.alloc(self.padded)?;
        let tmp = mem.alloc(self.padded)?;

        let mut total = mem.bitwise(BitwiseOp::InitZero, lt, None, lt)?;
        total.absorb(&mem.bitwise(BitwiseOp::InitOne, eq, None, eq)?);
        for i in (0..self.width).rev() {
            let a = self.slices[i];
            let b = other.slices[i];
            // lt |= eq & !a & b  (the first differing bit decides).
            total.absorb(&mem.bitwise(BitwiseOp::Not, a, None, not_a)?);
            total.absorb(&mem.bitwise(BitwiseOp::And, not_a, Some(b), tmp)?);
            total.absorb(&mem.bitwise(BitwiseOp::And, eq, Some(tmp), tmp)?);
            total.absorb(&mem.bitwise(BitwiseOp::Or, lt, Some(tmp), lt)?);
            // eq &= (a == b).
            total.absorb(&mem.bitwise(BitwiseOp::Xnor, a, Some(b), tmp)?);
            total.absorb(&mem.bitwise(BitwiseOp::And, eq, Some(tmp), eq)?);
        }
        mem.free(eq)?;
        mem.free(not_a)?;
        mem.free(tmp)?;
        Ok((lt, total))
    }

    /// Lane-wise population count: a vector of `ceil(log2(width + 1))`-bit
    /// counters holding each lane's number of set bits. Per slice, a
    /// ripple of bulk half-adders folds the slice into the counter.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn popcount(
        &self,
        mem: &mut AmbitMemory,
    ) -> Result<(BitSlicedVector, OpReceipt), AmbitError> {
        let cw = popcount_width(self.width);
        let counter = BitSlicedVector::alloc(mem, self.lanes, cw)?;
        let carry = mem.alloc(self.padded)?;
        let tmp = mem.alloc(self.padded)?;

        let mut total = mem.bitwise(BitwiseOp::InitZero, counter.slices[0], None, counter.slices[0])?;
        for &c in &counter.slices[1..] {
            total.absorb(&mem.bitwise(BitwiseOp::InitZero, c, None, c)?);
        }
        for i in 0..self.width {
            total.absorb(&mem.bitwise(BitwiseOp::Copy, self.slices[i], None, carry)?);
            for j in 0..cw {
                // Half-adder: new carry = counter & carry, counter ^= carry.
                total.absorb(&mem.bitwise(BitwiseOp::And, counter.slices[j], Some(carry), tmp)?);
                total.absorb(&mem.bitwise(
                    BitwiseOp::Xor,
                    counter.slices[j],
                    Some(carry),
                    counter.slices[j],
                )?);
                total.absorb(&mem.bitwise(BitwiseOp::Copy, tmp, None, carry)?);
            }
        }
        mem.free(carry)?;
        mem.free(tmp)?;
        Ok((counter, total))
    }

    /// OR-reduction across the slices: a mask bitvector whose lane `l` is
    /// set iff `self[l] != 0`, via the driver's fused fold.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn nonzero_mask(
        &self,
        mem: &mut AmbitMemory,
    ) -> Result<(BitVectorHandle, OpReceipt), AmbitError> {
        let dst = mem.alloc(self.padded)?;
        let receipt = if self.width == 1 {
            mem.bitwise(BitwiseOp::Copy, self.slices[0], None, dst)?
        } else {
            mem.bitwise_fold(BitwiseOp::Or, &self.slices, dst)?
        };
        Ok((dst, receipt))
    }
}

/// Counter width needed to hold a popcount over `width` bits (the counts
/// `0..=width`).
pub(crate) fn popcount_width(width: usize) -> usize {
    (usize::BITS - width.leading_zeros()) as usize
}

fn mask(width: usize) -> u32 {
    if width == 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn memory() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry {
                subarrays_per_bank: 4,
                rows_per_subarray: 128,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = memory();
        let v = BitSlicedVector::alloc(&mut mem, 50, 12).unwrap();
        let values: Vec<u32> = (0..50).map(|i| (i * 37 + 5) % 4096).collect();
        v.write(&mut mem, &values).unwrap();
        assert_eq!(v.read(&mem).unwrap(), values);
    }

    #[test]
    fn vector_addition_matches_scalar() {
        let mut mem = memory();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let lanes = 100;
        let width = 10;
        let a_vals: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..1024)).collect();
        let b_vals: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..1024)).collect();
        let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        a.write(&mut mem, &a_vals).unwrap();
        b.write(&mut mem, &b_vals).unwrap();
        let (sum, receipt) = a.add(&mut mem, &b).unwrap();
        let got = sum.read(&mem).unwrap();
        for l in 0..lanes {
            assert_eq!(got[l], (a_vals[l] + b_vals[l]) & 1023, "lane {l}");
        }
        assert!(receipt.aaps > 0);
        // Sources unmodified.
        assert_eq!(a.read(&mem).unwrap(), a_vals);
        assert_eq!(b.read(&mem).unwrap(), b_vals);
    }

    #[test]
    fn addition_wraps_on_overflow() {
        let mut mem = memory();
        let a = BitSlicedVector::alloc(&mut mem, 4, 8).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, 4, 8).unwrap();
        a.write(&mut mem, &[250, 255, 0, 128]).unwrap();
        b.write(&mut mem, &[10, 1, 0, 128]).unwrap();
        let (sum, _) = a.add(&mut mem, &b).unwrap();
        assert_eq!(sum.read(&mem).unwrap(), vec![4, 0, 0, 0]);
    }

    #[test]
    fn subtraction_matches_wrapping_scalar() {
        let mut mem = memory();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lanes = 64;
        let width = 9;
        let a_vals: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..512)).collect();
        let b_vals: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..512)).collect();
        let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        a.write(&mut mem, &a_vals).unwrap();
        b.write(&mut mem, &b_vals).unwrap();
        let (diff, _) = a.sub(&mut mem, &b).unwrap();
        let got = diff.read(&mem).unwrap();
        for l in 0..lanes {
            assert_eq!(got[l], a_vals[l].wrapping_sub(b_vals[l]) & 511, "lane {l}");
        }
    }

    #[test]
    fn add_constant_increments_every_lane() {
        let mut mem = memory();
        let v = BitSlicedVector::alloc(&mut mem, 10, 6).unwrap();
        v.write(&mut mem, &[0, 1, 2, 3, 4, 5, 60, 61, 62, 63]).unwrap();
        let (out, _) = v.add_constant(&mut mem, 5).unwrap();
        assert_eq!(
            out.read(&mem).unwrap(),
            vec![5, 6, 7, 8, 9, 10, 1, 2, 3, 4] // wraps at 64
        );
    }

    #[test]
    fn adder_cost_scales_with_width_not_lanes() {
        let mut mem = memory();
        let lanes = mem.row_bits(); // one chunk per slice
        let a4 = BitSlicedVector::alloc(&mut mem, lanes, 4).unwrap();
        let b4 = BitSlicedVector::alloc(&mut mem, lanes, 4).unwrap();
        let (_, r4) = a4.add(&mut mem, &b4).unwrap();
        let a8 = BitSlicedVector::alloc(&mut mem, lanes, 8).unwrap();
        let b8 = BitSlicedVector::alloc(&mut mem, lanes, 8).unwrap();
        let (_, r8) = a8.add(&mut mem, &b8).unwrap();
        // Per-bit cost is fixed; doubling width roughly doubles AAPs.
        let per_bit4 = r4.aaps as f64 / 4.0;
        let per_bit8 = r8.aaps as f64 / 8.0;
        assert!((per_bit4 - per_bit8).abs() < 1.0, "{per_bit4} vs {per_bit8}");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut mem = memory();
        let a = BitSlicedVector::alloc(&mut mem, 10, 8).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, 10, 9).unwrap();
        assert!(matches!(
            a.add(&mut mem, &b),
            Err(AmbitError::SizeMismatch { .. })
        ));
    }
}
