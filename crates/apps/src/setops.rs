//! The set-operation study of the paper's Section 8.3 (Figure 12):
//! red-black trees vs SIMD bitsets vs Ambit-accelerated bitvectors for
//! m-way union, intersection, and difference.
//!
//! All three implementations run *functionally* on the same generated
//! workload and are cross-checked element-for-element; execution time is
//! then modelled per implementation:
//!
//! * **RB-tree** — node visits are counted by the instrumented tree during
//!   the actual run and converted to time with the tiered random-access
//!   latency of the CPU model (trees are pointer-chasing structures);
//! * **Bitset** — a streaming kernel over `(m+1)·N/8` bytes, bandwidth-
//!   tiered by working set (the 128-bit-SIMD baseline);
//! * **Ambit** — the makespan reported by the Ambit controller for the
//!   `(m−1)` in-DRAM bulk operations (sets are memory-resident; the result
//!   remains in memory, as in the paper's benchmark).

use ambit_core::AmbitMemory;
use ambit_sys::SystemConfig;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::amset::AmbitSetArena;
use crate::bitset::BitSet;
use crate::rbtree::RbTree;

/// Which set operation Figure 12 evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOperation {
    /// m-way union.
    Union,
    /// m-way intersection.
    Intersection,
    /// Left-fold difference: `s1 \ s2 \ … \ sm`.
    Difference,
}

impl SetOperation {
    /// All three operations in figure order.
    pub const ALL: [SetOperation; 3] = [
        SetOperation::Union,
        SetOperation::Intersection,
        SetOperation::Difference,
    ];
}

impl std::fmt::Display for SetOperation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SetOperation::Union => "union",
            SetOperation::Intersection => "intersection",
            SetOperation::Difference => "difference",
        })
    }
}

/// Workload parameters (paper: m = 15 input sets, N = 512 k domain,
/// e ∈ {4 … 1 k} elements per set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetWorkload {
    /// Number of input sets.
    pub m: usize,
    /// Domain size N (elements are in `0..domain`).
    pub domain: usize,
    /// Elements actually present in each input set.
    pub elements_per_set: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl SetWorkload {
    /// The paper's Figure 12 configuration for a given `e`.
    pub fn figure12(elements_per_set: usize) -> Self {
        SetWorkload {
            m: 15,
            domain: 512 * 1024,
            elements_per_set,
            seed: 0x5e7_0b5,
        }
    }

    /// Generates the m input element lists. To keep intersections
    /// non-trivially populated (as any meaningful benchmark does), half of
    /// each set is drawn from a small shared pool and half uniformly.
    pub fn generate(&self) -> Vec<Vec<usize>> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut universe: Vec<usize> = (0..self.domain).collect();
        universe.shuffle(&mut rng);
        let shared: Vec<usize> = universe[..self.elements_per_set.div_ceil(2)].to_vec();
        (0..self.m)
            .map(|i| {
                let mut set: Vec<usize> = shared.clone();
                let start = self.elements_per_set * (i + 1);
                for &v in universe[start..].iter() {
                    if set.len() >= self.elements_per_set {
                        break;
                    }
                    if !shared.contains(&v) {
                        set.push(v);
                    }
                }
                set.sort_unstable();
                set.dedup();
                set
            })
            .collect()
    }
}

/// Measured/modelled outcome for one (workload, operation) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetOpResult {
    /// Modelled RB-tree time, seconds.
    pub rbtree_s: f64,
    /// Modelled bitset (SIMD baseline) time, seconds.
    pub bitset_s: f64,
    /// Ambit in-DRAM makespan, seconds.
    pub ambit_s: f64,
    /// Size of the (cross-checked) result set.
    pub result_len: usize,
}

impl SetOpResult {
    /// Times normalized to the RB-tree baseline, `(rb, bitset, ambit)` —
    /// the y-axis of Figure 12.
    pub fn normalized(&self) -> (f64, f64, f64) {
        (
            1.0,
            self.bitset_s / self.rbtree_s,
            self.ambit_s / self.rbtree_s,
        )
    }
}

/// Runs one Figure 12 data point: functional execution of all three
/// implementations (with cross-checking) plus time modelling.
///
/// `mem` supplies the Ambit device; the arena is rebuilt per call.
///
/// # Panics
///
/// Panics if the three implementations disagree on the result set — that
/// would be a correctness bug, not a workload property.
pub fn run_setop(
    config: &SystemConfig,
    mem: AmbitMemory,
    workload: &SetWorkload,
    op: SetOperation,
) -> SetOpResult {
    let inputs = workload.generate();

    // ---------- RB-tree (instrumented functional run) ----------
    let trees: Vec<RbTree<usize>> = inputs
        .iter()
        .map(|set| set.iter().copied().collect())
        .collect();
    for t in &trees {
        t.reset_visits();
    }
    let rb_result: RbTree<usize> = match op {
        SetOperation::Union => {
            let mut out = RbTree::new();
            for t in &trees {
                for &k in t.iter() {
                    out.insert(k);
                }
            }
            out
        }
        SetOperation::Intersection => {
            let mut out = RbTree::new();
            'outer: for &k in trees[0].iter() {
                for t in &trees[1..] {
                    if !t.contains(&k) {
                        continue 'outer;
                    }
                }
                out.insert(k);
            }
            out
        }
        SetOperation::Difference => {
            let mut out = RbTree::new();
            'outer: for &k in trees[0].iter() {
                for t in &trees[1..] {
                    if t.contains(&k) {
                        continue 'outer;
                    }
                }
                out.insert(k);
            }
            out
        }
    };
    let total_visits: u64 =
        trees.iter().map(|t| t.visits()).sum::<u64>() + rb_result.visits();
    // ~40 B per node (key + color + three links).
    let tree_bytes = (workload.m * workload.elements_per_set + rb_result.len()) * 40;
    let rbtree_s = config.random_access_time_s(total_visits as usize, tree_bytes);

    // ---------- Bitset (functional + stream model) ----------
    let mut bitsets: Vec<BitSet> = inputs
        .iter()
        .map(|set| {
            let mut b = BitSet::new(workload.domain);
            for &v in set {
                b.insert(v);
            }
            b
        })
        .collect();
    let first = bitsets.remove(0);
    let bs_result = bitsets.iter().fold(first, |acc, b| match op {
        SetOperation::Union => acc.union(b),
        SetOperation::Intersection => acc.intersection(b),
        SetOperation::Difference => acc.difference(b),
    });
    let vec_bytes = workload.domain.div_ceil(8);
    let bytes_moved = (workload.m + 1) * vec_bytes;
    let bitset_s = config.stream_time_s(bytes_moved, bytes_moved, bytes_moved);

    // ---------- Ambit (functional run on the simulated device) ----------
    let mut arena = AmbitSetArena::new(mem, workload.domain);
    let handles: Vec<_> = inputs
        .iter()
        .map(|set| {
            let h = arena.new_set().expect("device capacity");
            arena.load(h, set).expect("load");
            h
        })
        .collect();
    let out = arena.new_set().expect("device capacity");
    let mut start_ps = None;
    let mut end_ps = 0;
    // Left-fold: out = ((s1 op s2) op s3) …
    let mut acc = handles[0];
    for &h in &handles[1..] {
        let receipt = match op {
            SetOperation::Union => arena.union(out, acc, h),
            SetOperation::Intersection => arena.intersection(out, acc, h),
            SetOperation::Difference => arena.difference(out, acc, h),
        }
        .expect("in-DRAM set op");
        start_ps.get_or_insert(receipt.start_ps);
        end_ps = receipt.end_ps;
        acc = out;
    }
    let ambit_s = (end_ps - start_ps.unwrap_or(0)) as f64 * 1e-12;

    // ---------- cross-check ----------
    let rb_elems: Vec<usize> = rb_result.iter().copied().collect();
    let bs_elems: Vec<usize> = bs_result.iter().collect();
    let am_elems = arena.elements(out).expect("read result");
    assert_eq!(rb_elems, bs_elems, "{op}: RB-tree and bitset disagree");
    assert_eq!(rb_elems, am_elems, "{op}: RB-tree and Ambit disagree");

    SetOpResult {
        rbtree_s,
        bitset_s,
        ambit_s,
        result_len: rb_elems.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};

    fn small_mem() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry {
                subarrays_per_bank: 4,
                rows_per_subarray: 64,
                row_bytes: 1024,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn small_workload(e: usize) -> SetWorkload {
        SetWorkload {
            m: 5,
            domain: 16 * 1024,
            elements_per_set: e,
            seed: 7,
        }
    }

    #[test]
    fn workload_generation_is_deterministic_and_sized() {
        let w = small_workload(50);
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.len(), 5);
        for set in &a {
            assert_eq!(set.len(), 50);
            assert!(set.windows(2).all(|p| p[0] < p[1]), "sorted unique");
            assert!(set.iter().all(|&v| v < w.domain));
        }
    }

    #[test]
    fn sets_share_elements_so_intersection_is_nonempty() {
        let w = small_workload(40);
        let r = run_setop(
            &SystemConfig::gem5_calibrated(),
            small_mem(),
            &w,
            SetOperation::Intersection,
        );
        assert!(r.result_len >= 10, "shared pool keeps intersections alive");
    }

    #[test]
    fn all_ops_cross_check_and_produce_times() {
        let w = small_workload(30);
        for op in SetOperation::ALL {
            let r = run_setop(&SystemConfig::gem5_calibrated(), small_mem(), &w, op);
            assert!(r.rbtree_s > 0.0 && r.bitset_s > 0.0 && r.ambit_s > 0.0, "{op}");
        }
    }

    #[test]
    fn rbtree_time_grows_with_elements() {
        let cfg = SystemConfig::gem5_calibrated();
        let small = run_setop(&cfg, small_mem(), &small_workload(10), SetOperation::Union);
        let large = run_setop(&cfg, small_mem(), &small_workload(200), SetOperation::Union);
        assert!(large.rbtree_s > 3.0 * small.rbtree_s);
        // While bitset cost is independent of population.
        assert!((large.bitset_s - small.bitset_s).abs() < 1e-12);
    }

    #[test]
    fn figure12_crossover_shape() {
        // Paper: RB-tree wins at tiny e; Ambit wins from e ≈ 64 up.
        let cfg = SystemConfig::gem5_calibrated();
        let w = SetWorkload::figure12(4);
        let mem = AmbitMemory::ddr3_module();
        let tiny_e = run_setop(&cfg, mem, &w, SetOperation::Intersection);
        assert!(
            tiny_e.rbtree_s < tiny_e.ambit_s || tiny_e.rbtree_s < tiny_e.bitset_s,
            "RB-tree is competitive at e = 4"
        );

        let w = SetWorkload::figure12(1024);
        let mem = AmbitMemory::ddr3_module();
        let big_e = run_setop(&cfg, mem, &w, SetOperation::Intersection);
        assert!(
            big_e.ambit_s < big_e.rbtree_s,
            "Ambit wins at e = 1k: ambit {} vs rb {}",
            big_e.ambit_s,
            big_e.rbtree_s
        );
        assert!(
            big_e.ambit_s < big_e.bitset_s,
            "Ambit beats the SIMD bitset everywhere"
        );
    }
}
