//! A red-black tree implemented from scratch — the baseline set data
//! structure of the paper's Section 8.3 ("Red-black trees are typically
//! used to implement a set", citing Guibas & Sedgewick).
//!
//! The implementation is an index-based (arena) tree: nodes live in a
//! `Vec` and children/parents are indices, which keeps the rebalancing
//! logic safe without `unsafe` or `Rc<RefCell>` overhead. Insertion and
//! deletion implement the classic CLRS fixup algorithms; the invariants
//! (root black, no red-red edges, equal black heights) are checked by an
//! internal validator used heavily in tests.
//!
//! The tree also counts node visits so the application study can convert
//! traversal work into time with the `ambit-sys` CPU model.

use std::cell::Cell;
use std::cmp::Ordering;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    key: T,
    color: Color,
    parent: usize,
    left: usize,
    right: usize,
}

/// An ordered set implemented as a red-black tree.
///
/// # Examples
///
/// ```
/// use ambit_apps::RbTree;
///
/// let mut set = RbTree::new();
/// for k in [5, 1, 9, 3] {
///     set.insert(k);
/// }
/// assert!(set.contains(&3));
/// assert!(!set.contains(&4));
/// assert_eq!(set.iter().copied().collect::<Vec<_>>(), vec![1, 3, 5, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct RbTree<T> {
    nodes: Vec<Node<T>>,
    root: usize,
    len: usize,
    /// Free list of recycled node slots.
    free: Vec<usize>,
    /// Count of node visits (comparisons/links followed), for cost models.
    visits: Cell<u64>,
}

impl<T: Ord> RbTree<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        RbTree {
            nodes: Vec::new(),
            root: NIL,
            len: 0,
            free: Vec::new(),
            visits: Cell::new(0),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node visits performed so far (for traversal cost accounting).
    pub fn visits(&self) -> u64 {
        self.visits.get()
    }

    /// Resets the visit counter.
    pub fn reset_visits(&self) {
        self.visits.set(0);
    }

    fn visit(&self) {
        self.visits.set(self.visits.get() + 1);
    }

    /// Returns `true` if `key` is in the set.
    pub fn contains(&self, key: &T) -> bool {
        let mut x = self.root;
        while x != NIL {
            self.visit();
            match key.cmp(&self.nodes[x].key) {
                Ordering::Equal => return true,
                Ordering::Less => x = self.nodes[x].left,
                Ordering::Greater => x = self.nodes[x].right,
            }
        }
        false
    }

    /// Inserts `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: T) -> bool {
        // Standard BST descent.
        let mut parent = NIL;
        let mut x = self.root;
        while x != NIL {
            self.visit();
            parent = x;
            match key.cmp(&self.nodes[x].key) {
                Ordering::Equal => return false,
                Ordering::Less => x = self.nodes[x].left,
                Ordering::Greater => x = self.nodes[x].right,
            }
        }
        let z = self.alloc(Node {
            key,
            color: Color::Red,
            parent,
            left: NIL,
            right: NIL,
        });
        if parent == NIL {
            self.root = z;
        } else if self.nodes[z].key < self.nodes[parent].key {
            self.nodes[parent].left = z;
        } else {
            self.nodes[parent].right = z;
        }
        self.len += 1;
        self.insert_fixup(z);
        true
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &T) -> bool {
        let mut z = self.root;
        while z != NIL {
            self.visit();
            match key.cmp(&self.nodes[z].key) {
                Ordering::Equal => break,
                Ordering::Less => z = self.nodes[z].left,
                Ordering::Greater => z = self.nodes[z].right,
            }
        }
        if z == NIL {
            return false;
        }
        self.delete_node(z);
        self.len -= 1;
        true
    }

    /// In-order iterator over the elements.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut stack = Vec::new();
        let mut x = self.root;
        while x != NIL {
            stack.push(x);
            x = self.nodes[x].left;
        }
        Iter { tree: self, stack }
    }

    /// Builds a set from the union of `self` and `other` (new tree).
    pub fn union(&self, other: &RbTree<T>) -> RbTree<T>
    where
        T: Clone,
    {
        let mut out = RbTree::new();
        for k in self.iter() {
            out.insert(k.clone());
        }
        for k in other.iter() {
            out.insert(k.clone());
        }
        out
    }

    /// Builds a set from the intersection of `self` and `other`.
    pub fn intersection(&self, other: &RbTree<T>) -> RbTree<T>
    where
        T: Clone,
    {
        let mut out = RbTree::new();
        for k in self.iter() {
            if other.contains(k) {
                out.insert(k.clone());
            }
        }
        out
    }

    /// Builds a set from the elements of `self` not in `other`.
    pub fn difference(&self, other: &RbTree<T>) -> RbTree<T>
    where
        T: Clone,
    {
        let mut out = RbTree::new();
        for k in self.iter() {
            if !other.contains(k) {
                out.insert(k.clone());
            }
        }
        out
    }

    /// Validates the red-black invariants; returns the black height.
    ///
    /// # Panics
    ///
    /// Panics (with a description) if any invariant is violated. Intended
    /// for tests.
    pub fn check_invariants(&self) -> usize {
        if self.root == NIL {
            return 0;
        }
        assert!(
            self.nodes[self.root].color == Color::Black,
            "root must be black"
        );
        assert_eq!(self.nodes[self.root].parent, NIL, "root has no parent");
        let (black_height, count) = self.check_subtree(self.root);
        assert_eq!(count, self.len, "node count mismatch");
        black_height
    }

    fn check_subtree(&self, x: usize) -> (usize, usize) {
        if x == NIL {
            return (1, 0);
        }
        let n = &self.nodes[x];
        if n.color == Color::Red {
            for child in [n.left, n.right] {
                assert!(
                    child == NIL || self.nodes[child].color == Color::Black,
                    "red node has red child"
                );
            }
        }
        for child in [n.left, n.right] {
            if child != NIL {
                assert_eq!(self.nodes[child].parent, x, "broken parent link");
            }
        }
        if n.left != NIL {
            assert!(self.nodes[n.left].key < n.key, "BST order violated");
        }
        if n.right != NIL {
            assert!(self.nodes[n.right].key > n.key, "BST order violated");
        }
        let (bl, cl) = self.check_subtree(n.left);
        let (br, cr) = self.check_subtree(n.right);
        assert_eq!(bl, br, "black heights differ");
        let this_black = if n.color == Color::Black { 1 } else { 0 };
        (bl + this_black, cl + cr + 1)
    }

    // ----- internal machinery -----

    fn alloc(&mut self, node: Node<T>) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn color(&self, x: usize) -> Color {
        if x == NIL {
            Color::Black
        } else {
            self.nodes[x].color
        }
    }

    fn set_color(&mut self, x: usize, c: Color) {
        if x != NIL {
            self.nodes[x].color = c;
        }
    }

    fn left_rotate(&mut self, x: usize) {
        let y = self.nodes[x].right;
        debug_assert_ne!(y, NIL);
        let y_left = self.nodes[y].left;
        self.nodes[x].right = y_left;
        if y_left != NIL {
            self.nodes[y_left].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
    }

    fn right_rotate(&mut self, x: usize) {
        let y = self.nodes[x].left;
        debug_assert_ne!(y, NIL);
        let y_right = self.nodes[y].right;
        self.nodes[x].left = y_right;
        if y_right != NIL {
            self.nodes[y_right].parent = x;
        }
        let xp = self.nodes[x].parent;
        self.nodes[y].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp].left == x {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.color(self.nodes[z].parent) == Color::Red {
            let parent = self.nodes[z].parent;
            let grand = self.nodes[parent].parent;
            if grand == NIL {
                break;
            }
            if parent == self.nodes[grand].left {
                let uncle = self.nodes[grand].right;
                if self.color(uncle) == Color::Red {
                    self.set_color(parent, Color::Black);
                    self.set_color(uncle, Color::Black);
                    self.set_color(grand, Color::Red);
                    z = grand;
                } else {
                    if z == self.nodes[parent].right {
                        z = parent;
                        self.left_rotate(z);
                    }
                    let parent = self.nodes[z].parent;
                    let grand = self.nodes[parent].parent;
                    self.set_color(parent, Color::Black);
                    self.set_color(grand, Color::Red);
                    self.right_rotate(grand);
                }
            } else {
                let uncle = self.nodes[grand].left;
                if self.color(uncle) == Color::Red {
                    self.set_color(parent, Color::Black);
                    self.set_color(uncle, Color::Black);
                    self.set_color(grand, Color::Red);
                    z = grand;
                } else {
                    if z == self.nodes[parent].left {
                        z = parent;
                        self.right_rotate(z);
                    }
                    let parent = self.nodes[z].parent;
                    let grand = self.nodes[parent].parent;
                    self.set_color(parent, Color::Black);
                    self.set_color(grand, Color::Red);
                    self.left_rotate(grand);
                }
            }
        }
        let root = self.root;
        self.set_color(root, Color::Black);
    }

    fn minimum(&self, mut x: usize) -> usize {
        while self.nodes[x].left != NIL {
            self.visit();
            x = self.nodes[x].left;
        }
        x
    }

    /// Replaces the subtree rooted at `u` with the subtree rooted at `v`.
    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.nodes[u].parent;
        if up == NIL {
            self.root = v;
        } else if self.nodes[up].left == u {
            self.nodes[up].left = v;
        } else {
            self.nodes[up].right = v;
        }
        if v != NIL {
            self.nodes[v].parent = up;
        }
    }

    fn delete_node(&mut self, z: usize) {
        // CLRS delete with a NIL-aware fixup: we track the fixup position
        // as (node, parent) because we have no sentinel node.
        let mut y = z;
        let mut y_original_color = self.nodes[y].color;
        let x;
        let x_parent;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            x_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            x_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z].right);
            y_original_color = self.nodes[y].color;
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                x_parent = y;
            } else {
                x_parent = self.nodes[y].parent;
                self.transplant(y, x);
                let zr = self.nodes[z].right;
                self.nodes[y].right = zr;
                self.nodes[zr].parent = y;
            }
            self.transplant(z, y);
            let zl = self.nodes[z].left;
            self.nodes[y].left = zl;
            self.nodes[zl].parent = y;
            self.nodes[y].color = self.nodes[z].color;
        }
        if y_original_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        self.free.push(z);
    }

    fn delete_fixup(&mut self, mut x: usize, mut parent: usize) {
        while x != self.root && self.color(x) == Color::Black {
            if parent == NIL {
                break;
            }
            if x == self.nodes[parent].left {
                let mut w = self.nodes[parent].right;
                if self.color(w) == Color::Red {
                    self.set_color(w, Color::Black);
                    self.set_color(parent, Color::Red);
                    self.left_rotate(parent);
                    w = self.nodes[parent].right;
                }
                if self.color(self.nodes[w].left) == Color::Black
                    && self.color(self.nodes[w].right) == Color::Black
                {
                    self.set_color(w, Color::Red);
                    x = parent;
                    parent = self.nodes[x].parent;
                } else {
                    if self.color(self.nodes[w].right) == Color::Black {
                        let wl = self.nodes[w].left;
                        self.set_color(wl, Color::Black);
                        self.set_color(w, Color::Red);
                        self.right_rotate(w);
                        w = self.nodes[parent].right;
                    }
                    self.set_color(w, self.color(parent));
                    self.set_color(parent, Color::Black);
                    let wr = self.nodes[w].right;
                    self.set_color(wr, Color::Black);
                    self.left_rotate(parent);
                    x = self.root;
                    parent = NIL;
                }
            } else {
                let mut w = self.nodes[parent].left;
                if self.color(w) == Color::Red {
                    self.set_color(w, Color::Black);
                    self.set_color(parent, Color::Red);
                    self.right_rotate(parent);
                    w = self.nodes[parent].left;
                }
                if self.color(self.nodes[w].right) == Color::Black
                    && self.color(self.nodes[w].left) == Color::Black
                {
                    self.set_color(w, Color::Red);
                    x = parent;
                    parent = self.nodes[x].parent;
                } else {
                    if self.color(self.nodes[w].left) == Color::Black {
                        let wr = self.nodes[w].right;
                        self.set_color(wr, Color::Black);
                        self.set_color(w, Color::Red);
                        self.left_rotate(w);
                        w = self.nodes[parent].left;
                    }
                    self.set_color(w, self.color(parent));
                    self.set_color(parent, Color::Black);
                    let wl = self.nodes[w].left;
                    self.set_color(wl, Color::Black);
                    self.right_rotate(parent);
                    x = self.root;
                    parent = NIL;
                }
            }
        }
        self.set_color(x, Color::Black);
    }
}

impl<T: Ord> Default for RbTree<T> {
    fn default() -> Self {
        RbTree::new()
    }
}

impl<T: Ord> FromIterator<T> for RbTree<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut tree = RbTree::new();
        for k in iter {
            tree.insert(k);
        }
        tree
    }
}

impl<T: Ord> Extend<T> for RbTree<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

/// In-order iterator over an [`RbTree`], produced by [`RbTree::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    tree: &'a RbTree<T>,
    stack: Vec<usize>,
}

impl<'a, T: Ord> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let x = self.stack.pop()?;
        self.tree.visit();
        let mut r = self.tree.nodes[x].right;
        while r != NIL {
            self.stack.push(r);
            r = self.tree.nodes[r].left;
        }
        Some(&self.tree.nodes[x].key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeSet;

    #[test]
    fn empty_tree() {
        let t: RbTree<i32> = RbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(!t.contains(&5));
        assert_eq!(t.check_invariants(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let mut t = RbTree::new();
        for k in 0..1024 {
            assert!(t.insert(k));
            t.check_invariants();
        }
        assert_eq!(t.len(), 1024);
        // Height bound: 2·log2(n+1) ⇒ black height ≤ ~11 for 1024 nodes.
        assert!(t.check_invariants() <= 11);
        let got: Vec<i32> = t.iter().copied().collect();
        assert_eq!(got, (0..1024).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_inserts_rejected() {
        let mut t = RbTree::new();
        assert!(t.insert(7));
        assert!(!t.insert(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn random_insert_remove_matches_btreeset() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut t = RbTree::new();
        let mut reference = BTreeSet::new();
        for _ in 0..4000 {
            let k: u16 = rng.gen_range(0..500);
            if rng.gen_bool(0.6) {
                assert_eq!(t.insert(k), reference.insert(k), "insert {k}");
            } else {
                assert_eq!(t.remove(&k), reference.remove(&k), "remove {k}");
            }
            assert_eq!(t.len(), reference.len());
        }
        t.check_invariants();
        let got: Vec<u16> = t.iter().copied().collect();
        let expect: Vec<u16> = reference.iter().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_all_in_random_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut keys: Vec<u32> = (0..512).collect();
        keys.shuffle(&mut rng);
        let mut t: RbTree<u32> = keys.iter().copied().collect();
        keys.shuffle(&mut rng);
        for (i, k) in keys.iter().enumerate() {
            assert!(t.remove(k));
            if i % 37 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.check_invariants(), 0);
    }

    #[test]
    fn node_slots_are_recycled() {
        let mut t = RbTree::new();
        for k in 0..100 {
            t.insert(k);
        }
        for k in 0..100 {
            t.remove(&k);
        }
        let baseline = t.nodes.len();
        for k in 100..150 {
            t.insert(k);
        }
        assert_eq!(t.nodes.len(), baseline, "freed slots reused");
        t.check_invariants();
    }

    #[test]
    fn set_operations_match_btreeset() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let a_keys: BTreeSet<u16> = (0..200).map(|_| rng.gen_range(0..300)).collect();
        let b_keys: BTreeSet<u16> = (0..200).map(|_| rng.gen_range(0..300)).collect();
        let a: RbTree<u16> = a_keys.iter().copied().collect();
        let b: RbTree<u16> = b_keys.iter().copied().collect();

        let union: Vec<u16> = a.union(&b).iter().copied().collect();
        let expect: Vec<u16> = a_keys.union(&b_keys).copied().collect();
        assert_eq!(union, expect);

        let inter: Vec<u16> = a.intersection(&b).iter().copied().collect();
        let expect: Vec<u16> = a_keys.intersection(&b_keys).copied().collect();
        assert_eq!(inter, expect);

        let diff: Vec<u16> = a.difference(&b).iter().copied().collect();
        let expect: Vec<u16> = a_keys.difference(&b_keys).copied().collect();
        assert_eq!(diff, expect);
    }

    #[test]
    fn visits_count_traversal_work() {
        let mut t = RbTree::new();
        for k in 0..128 {
            t.insert(k);
        }
        t.reset_visits();
        t.contains(&64);
        let lookup_visits = t.visits();
        assert!((1..=16).contains(&lookup_visits), "{lookup_visits}");
        t.reset_visits();
        let _ = t.iter().count();
        assert!(t.visits() >= 128);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: RbTree<i32> = (0..10).collect();
        t.extend(10..20);
        assert_eq!(t.len(), 20);
        t.check_invariants();
    }
}
