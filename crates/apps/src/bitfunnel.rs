//! BitFunnel-style document filtering (paper Section 8.4.1, after Goodwin
//! et al., SIGIR'17).
//!
//! Documents are represented as Bloom-filter signatures; the index stores
//! the signatures *bit-sliced*: slice `r` is a bitvector over documents
//! whose signature has bit `r` set. A conjunctive query maps its terms to
//! signature bit positions and ANDs the corresponding slices — documents
//! remaining set are candidates (Bloom semantics: no false negatives).
//! With Ambit, each slice AND is one bulk in-DRAM operation across
//! thousands of documents at once.

use ambit_core::{AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// Number of signature bits each term sets (Bloom hash count).
const HASHES_PER_TERM: usize = 3;

fn term_positions(term: &str, signature_bits: usize) -> [usize; HASHES_PER_TERM] {
    // FNV-1a with three different offsets — deterministic and portable.
    let mut out = [0; HASHES_PER_TERM];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (k as u64).wrapping_mul(0x9e37_79b9);
        for b in term.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        *slot = (h % signature_bits as u64) as usize;
    }
    out
}

/// A bit-sliced Bloom signature index resident in Ambit memory.
#[derive(Debug)]
pub struct DocumentIndex {
    mem: AmbitMemory,
    /// One slice per signature bit: `slices[r]` has bit `d` set iff
    /// document `d`'s signature contains bit `r`.
    slices: Vec<BitVectorHandle>,
    scratch: BitVectorHandle,
    result: BitVectorHandle,
    capacity_docs: usize,
    doc_count: usize,
    signature_bits: usize,
    /// Kept for verification: the terms of each document.
    docs: Vec<Vec<String>>,
}

impl DocumentIndex {
    /// Creates an index for up to `capacity_docs` documents with
    /// `signature_bits`-bit Bloom signatures.
    ///
    /// # Panics
    ///
    /// Panics if the device lacks capacity for the slices.
    pub fn new(mut mem: AmbitMemory, capacity_docs: usize, signature_bits: usize) -> Self {
        assert!(signature_bits >= HASHES_PER_TERM, "signature too small");
        let row_bits = mem.row_bits();
        let padded = capacity_docs.div_ceil(row_bits) * row_bits;
        let slices = (0..signature_bits)
            .map(|_| mem.alloc(padded).expect("device capacity"))
            .collect();
        let scratch = mem.alloc(padded).expect("device capacity");
        let result = mem.alloc(padded).expect("device capacity");
        DocumentIndex {
            mem,
            slices,
            scratch,
            result,
            capacity_docs,
            doc_count: 0,
            signature_bits,
            docs: Vec::new(),
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_count
    }

    /// Returns `true` if no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.doc_count == 0
    }

    /// Indexes a document (a bag of terms); returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the index is full.
    pub fn add_document<S: AsRef<str>>(&mut self, terms: &[S]) -> usize {
        assert!(self.doc_count < self.capacity_docs, "index full");
        let id = self.doc_count;
        self.doc_count += 1;
        for term in terms {
            for pos in term_positions(term.as_ref(), self.signature_bits) {
                let h = self.slices[pos];
                let mut bits = self.mem.peek_bits(h).expect("slice");
                bits[id] = true;
                self.mem.poke_bits(h, &bits).expect("slice");
            }
        }
        self.docs
            .push(terms.iter().map(|t| t.as_ref().to_string()).collect());
        id
    }

    /// Conjunctive query: returns candidate document ids (superset of the
    /// true matches — Bloom filters admit false positives, never false
    /// negatives) and the in-DRAM receipt for the slice ANDs.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn query<S: AsRef<str>>(&mut self, terms: &[S]) -> (Vec<usize>, OpReceipt) {
        assert!(!terms.is_empty(), "query needs at least one term");
        let mut positions: Vec<usize> = terms
            .iter()
            .flat_map(|t| term_positions(t.as_ref(), self.signature_bits))
            .collect();
        positions.sort_unstable();
        positions.dedup();

        let first = self.slices[positions[0]];
        let mut receipt = self
            .mem
            .bitwise(BitwiseOp::Copy, first, None, self.result)
            .expect("copy");
        for &pos in &positions[1..] {
            let r = self
                .mem
                .bitwise(BitwiseOp::And, self.result, Some(self.slices[pos]), self.result)
                .expect("and");
            receipt.absorb(&r);
        }
        let _ = self.scratch; // reserved for future phrase queries
        let bits = self.mem.peek_bits(self.result).expect("result");
        let candidates = bits[..self.doc_count]
            .iter()
            .enumerate()
            .filter_map(|(d, &b)| b.then_some(d))
            .collect();
        (candidates, receipt)
    }

    /// Exact (term-list) matches, for verifying Bloom semantics in tests.
    pub fn exact_matches<S: AsRef<str>>(&self, terms: &[S]) -> Vec<usize> {
        self.docs
            .iter()
            .enumerate()
            .filter(|(_, doc)| {
                terms
                    .iter()
                    .all(|t| doc.iter().any(|d| d == t.as_ref()))
            })
            .map(|(d, _)| d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};

    fn index(docs: usize, bits: usize) -> DocumentIndex {
        let mem = AmbitMemory::new(
            DramGeometry {
                banks: 2,
                subarrays_per_bank: 8,
                rows_per_subarray: 512,
                row_bytes: 64,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        DocumentIndex::new(mem, docs, bits)
    }

    #[test]
    fn no_false_negatives() {
        let mut idx = index(64, 128);
        let corpus: Vec<Vec<&str>> = vec![
            vec!["dram", "bitwise", "accelerator"],
            vec!["dram", "refresh", "retention"],
            vec!["cache", "coherence", "protocol"],
            vec!["bitwise", "bloom", "search"],
        ];
        for doc in &corpus {
            idx.add_document(doc);
        }
        for query in [vec!["dram"], vec!["bitwise"], vec!["dram", "bitwise"]] {
            let (candidates, _) = idx.query(&query);
            let exact = idx.exact_matches(&query);
            for d in &exact {
                assert!(
                    candidates.contains(d),
                    "query {query:?}: document {d} missing (false negative)"
                );
            }
        }
    }

    #[test]
    fn selective_query_narrows_candidates() {
        let mut idx = index(64, 256);
        for i in 0..40 {
            let filler = format!("term{i}");
            idx.add_document(&[filler.as_str(), "common"]);
        }
        idx.add_document(&["rare", "common"]);
        let (candidates, _) = idx.query(&["rare"]);
        assert!(candidates.contains(&40));
        assert!(
            candidates.len() <= 5,
            "rare term should prune the corpus: {candidates:?}"
        );
        let (all, _) = idx.query(&["common"]);
        assert_eq!(all.len(), 41);
    }

    #[test]
    fn query_cost_scales_with_terms() {
        let mut idx = index(64, 256);
        idx.add_document(&["alpha", "beta", "gamma"]);
        let (_, one) = idx.query(&["alpha"]);
        let (_, three) = idx.query(&["alpha", "beta", "gamma"]);
        assert!(three.aaps > one.aaps, "more terms, more slice ANDs");
    }

    #[test]
    #[should_panic(expected = "index full")]
    fn capacity_enforced() {
        let mut idx = index(2, 64);
        idx.add_document(&["a"]);
        idx.add_document(&["b"]);
        idx.add_document(&["c"]);
    }
}
