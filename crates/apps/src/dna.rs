//! Bit-parallel DNA read pre-alignment filtering (paper Section 8.4.4,
//! in the spirit of Shifted Hamming Distance / GateKeeper).
//!
//! Bases are 2-bit encoded into two bitplanes (`hi`, `lo`). For a read
//! against a reference window, the per-position mismatch vector is
//!
//! ```text
//! mismatch = (read.hi ^ ref.hi) | (read.lo ^ ref.lo)
//! ```
//!
//! computed with bulk XOR/OR. A filter accepts a candidate location when
//! the mismatch popcount is within the edit threshold for at least one
//! small shift of the read — cheap bitwise work that discards most
//! candidate locations before expensive alignment.

use ambit_core::{AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// A DNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Thymine.
    T,
}

impl Base {
    /// 2-bit encoding: `(hi, lo)`.
    pub fn encode(self) -> (bool, bool) {
        match self {
            Base::A => (false, false),
            Base::C => (false, true),
            Base::G => (true, false),
            Base::T => (true, true),
        }
    }

    /// Parses one ASCII base.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `ACGT` (case-insensitive).
    pub fn from_char(c: char) -> Base {
        match c.to_ascii_uppercase() {
            'A' => Base::A,
            'C' => Base::C,
            'G' => Base::G,
            'T' => Base::T,
            other => panic!("not a DNA base: {other:?}"),
        }
    }
}

/// Parses a sequence string into bases.
///
/// # Panics
///
/// Panics on non-ACGT characters.
pub fn parse_sequence(s: &str) -> Vec<Base> {
    s.chars().map(Base::from_char).collect()
}

/// The two bitplanes of a 2-bit-encoded sequence window, resident in
/// Ambit memory.
#[derive(Debug, Clone, Copy)]
struct Planes {
    hi: BitVectorHandle,
    lo: BitVectorHandle,
}

/// A pre-alignment filter comparing reads against a reference window
/// using bulk in-DRAM bitwise operations.
#[derive(Debug)]
pub struct DnaFilter {
    mem: AmbitMemory,
    reference: Vec<Base>,
    window: usize,
    padded: usize,
    read_planes: Planes,
    ref_planes: Planes,
    scratch: Planes,
    mismatch: BitVectorHandle,
}

impl DnaFilter {
    /// Creates a filter for `window`-base comparisons against `reference`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than the window or the device
    /// lacks capacity.
    pub fn new(mut mem: AmbitMemory, reference: Vec<Base>, window: usize) -> Self {
        assert!(reference.len() >= window, "reference shorter than window");
        let row = mem.row_bits();
        let padded = window.div_ceil(row) * row;
        let alloc = |mem: &mut AmbitMemory| mem.alloc(padded).expect("capacity");
        let read_planes = Planes { hi: alloc(&mut mem), lo: alloc(&mut mem) };
        let ref_planes = Planes { hi: alloc(&mut mem), lo: alloc(&mut mem) };
        let scratch = Planes { hi: alloc(&mut mem), lo: alloc(&mut mem) };
        let mismatch = alloc(&mut mem);
        DnaFilter {
            mem,
            reference,
            window,
            padded,
            read_planes,
            ref_planes,
            scratch,
            mismatch,
        }
    }

    /// The comparison window length in bases.
    pub fn window(&self) -> usize {
        self.window
    }

    fn load_planes(&mut self, planes: Planes, bases: &[Base]) {
        let mut hi = vec![false; self.padded];
        let mut lo = vec![false; self.padded];
        for (i, b) in bases.iter().enumerate().take(self.window) {
            let (h, l) = b.encode();
            hi[i] = h;
            lo[i] = l;
        }
        self.mem.poke_bits(planes.hi, &hi).expect("plane");
        self.mem.poke_bits(planes.lo, &lo).expect("plane");
    }

    /// Counts base mismatches between `read` and the reference at
    /// `position`, entirely with bulk bitwise operations (plus the final
    /// CPU popcount). Positions beyond the read length count as matches.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the reference at `position`.
    pub fn mismatches_at(&mut self, read: &[Base], position: usize) -> (usize, OpReceipt) {
        assert!(
            position + self.window <= self.reference.len(),
            "window at {position} exceeds reference"
        );
        let window = self.window.min(read.len());
        let ref_slice: Vec<Base> = self.reference[position..position + self.window].to_vec();
        self.load_planes(self.read_planes, read);
        self.load_planes(self.ref_planes, &ref_slice);

        // mismatch = (r.hi ^ g.hi) | (r.lo ^ g.lo)
        let mut receipt = self
            .mem
            .bitwise(
                BitwiseOp::Xor,
                self.read_planes.hi,
                Some(self.ref_planes.hi),
                self.scratch.hi,
            )
            .expect("xor hi");
        receipt.absorb(
            &self
                .mem
                .bitwise(
                    BitwiseOp::Xor,
                    self.read_planes.lo,
                    Some(self.ref_planes.lo),
                    self.scratch.lo,
                )
                .expect("xor lo"),
        );
        receipt.absorb(
            &self
                .mem
                .bitwise(
                    BitwiseOp::Or,
                    self.scratch.hi,
                    Some(self.scratch.lo),
                    self.mismatch,
                )
                .expect("or"),
        );
        let bits = self.mem.peek_bits(self.mismatch).expect("mismatch");
        let count = bits[..window].iter().filter(|&&b| b).count();
        (count, receipt)
    }

    /// Shifted-Hamming-Distance-style filter: accepts `position` if some
    /// shift in `-max_shift..=max_shift` brings the mismatch count within
    /// `threshold`. Returns `(accepted, best_mismatches)`.
    pub fn filter(
        &mut self,
        read: &[Base],
        position: usize,
        max_shift: usize,
        threshold: usize,
    ) -> (bool, usize) {
        let mut best = usize::MAX;
        for shift in 0..=2 * max_shift {
            let offset = position as isize - max_shift as isize + shift as isize;
            if offset < 0 || offset as usize + self.window > self.reference.len() {
                continue;
            }
            let (mis, _) = self.mismatches_at(read, offset as usize);
            best = best.min(mis);
            if best <= threshold {
                return (true, best);
            }
        }
        (best <= threshold, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn mem() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn random_seq(n: usize, seed: u64) -> Vec<Base> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| match rng.gen_range(0..4) {
                0 => Base::A,
                1 => Base::C,
                2 => Base::G,
                _ => Base::T,
            })
            .collect()
    }

    #[test]
    fn encoding_is_injective() {
        let codes: Vec<(bool, bool)> =
            [Base::A, Base::C, Base::G, Base::T].iter().map(|b| b.encode()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn exact_match_has_zero_mismatches() {
        let reference = random_seq(96, 1);
        let read = reference[16..48].to_vec();
        let mut f = DnaFilter::new(mem(), reference, 32);
        let (mis, _) = f.mismatches_at(&read, 16);
        assert_eq!(mis, 0);
    }

    #[test]
    fn mismatch_count_matches_naive_comparison() {
        let reference = random_seq(128, 2);
        let read = random_seq(32, 3);
        let mut f = DnaFilter::new(mem(), reference.clone(), 32);
        for pos in [0, 17, 96] {
            let (got, _) = f.mismatches_at(&read, pos);
            let expect = read
                .iter()
                .zip(&reference[pos..pos + 32])
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(got, expect, "position {pos}");
        }
    }

    #[test]
    fn point_mutations_count_exactly() {
        let reference = random_seq(64, 4);
        let mut read = reference[0..32].to_vec();
        // Flip three bases to something different.
        for &i in &[3usize, 15, 28] {
            read[i] = match read[i] {
                Base::A => Base::C,
                Base::C => Base::G,
                Base::G => Base::T,
                Base::T => Base::A,
            };
        }
        let mut f = DnaFilter::new(mem(), reference, 32);
        let (mis, _) = f.mismatches_at(&read, 0);
        assert_eq!(mis, 3);
    }

    #[test]
    fn filter_recovers_shifted_reads() {
        let reference = random_seq(256, 5);
        // A read taken from offset 100 but tested at candidate position 98:
        // plain comparison fails, the shifted filter recovers it.
        let read = reference[100..132].to_vec();
        let mut f = DnaFilter::new(mem(), reference, 32);
        let (direct, _) = f.mismatches_at(&read, 98);
        assert!(direct > 3, "misaligned comparison looks bad: {direct}");
        let (accepted, best) = f.filter(&read, 98, 3, 2);
        assert!(accepted, "shifted filter finds the true locus");
        assert_eq!(best, 0);
    }

    #[test]
    fn filter_rejects_random_reads() {
        let reference = random_seq(256, 6);
        let read = random_seq(32, 7);
        let mut f = DnaFilter::new(mem(), reference, 32);
        let (accepted, best) = f.filter(&read, 100, 2, 2);
        assert!(!accepted, "random read passed with {best} mismatches");
    }

    #[test]
    fn parse_sequence_roundtrip() {
        let seq = parse_sequence("ACGTacgt");
        assert_eq!(seq.len(), 8);
        assert_eq!(seq[0], Base::A);
        assert_eq!(seq[7], Base::T);
    }

    #[test]
    #[should_panic(expected = "not a DNA base")]
    fn bad_base_rejected() {
        parse_sequence("ACGX");
    }
}
