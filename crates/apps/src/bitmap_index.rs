//! Database bitmap indices accelerated by Ambit — the paper's Section 8.1
//! (Figure 10).
//!
//! The workload models the real application the paper cites (a web
//! analytics engine): per-day activity bitmaps and a gender bitmap over
//! `u` users. The query —
//!
//! > "How many unique users were active every week for the past w weeks,
//! > and how many male users were active each of the past w weeks?"
//!
//! — executes `6w` bulk ORs (each weekly bitmap ORs 7 daily bitmaps),
//! `2w − 1` bulk ANDs, and `w + 1` bitcounts. The bitwise work runs in
//! Ambit; the bitcounts stay on the CPU, exactly as in the paper.
//!
//! The baseline executes the same query with fused SIMD streaming kernels
//! (the "state-of-the-art baseline using SIMD optimization"); its time is
//! modelled with the calibrated CPU profile, while the Ambit path runs
//! functionally on the simulated device and takes its in-DRAM time from
//! the controller's receipts. Both paths must produce identical counts.

use ambit_core::{AmbitMemory, BitwiseOp};
use ambit_sys::SystemConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Workload parameters for the bitmap-index experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitmapIndexWorkload {
    /// Number of users `u` (bits per bitmap). Paper: 8 M and 16 M.
    pub users: usize,
    /// Number of weeks `w`. Paper: 2, 3, 4.
    pub weeks: usize,
    /// Probability a user is active on a given day.
    pub daily_activity: f64,
    /// Probability a user is male (for the gender bitmap).
    pub male_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BitmapIndexWorkload {
    /// A Figure 10 configuration.
    pub fn figure10(users: usize, weeks: usize) -> Self {
        BitmapIndexWorkload {
            users,
            weeks,
            daily_activity: 0.3,
            male_fraction: 0.5,
            seed: 0xb17_3a95,
        }
    }

    /// Generates `(daily[week][day], male)` bitmaps as packed words.
    pub fn generate(&self) -> (Vec<Vec<Vec<u64>>>, Vec<u64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let words = self.users.div_ceil(64);
        let bitmap = |p: f64, rng: &mut ChaCha8Rng| -> Vec<u64> {
            let mut v = vec![0u64; words];
            for (i, w) in v.iter_mut().enumerate() {
                for b in 0..64 {
                    if i * 64 + b < self.users && rng.gen_bool(p) {
                        *w |= 1 << b;
                    }
                }
            }
            v
        };
        let dailies = (0..self.weeks)
            .map(|_| (0..7).map(|_| bitmap(self.daily_activity, &mut rng)).collect())
            .collect();
        let male = bitmap(self.male_fraction, &mut rng);
        (dailies, male)
    }
}

/// The answers to the query, produced by both execution paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Users active in every one of the past `w` weeks.
    pub active_every_week: usize,
    /// Male users active in each individual week.
    pub male_active_per_week: Vec<usize>,
}

/// Timing outcome of one Figure 10 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapIndexResult {
    /// Baseline (SIMD CPU) end-to-end query time, seconds.
    pub baseline_s: f64,
    /// Ambit end-to-end query time (in-DRAM ops + CPU bitcounts), seconds.
    pub ambit_s: f64,
    /// The cross-checked query answer.
    pub answer: QueryAnswer,
    /// Bulk bitwise operations executed in DRAM.
    pub dram_ops: usize,
}

impl BitmapIndexResult {
    /// The Figure 10 headline: baseline time ÷ Ambit time.
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.ambit_s
    }
}

fn popcount(words: &[u64], bits: usize) -> usize {
    let mut count = 0;
    for (i, &w) in words.iter().enumerate() {
        let valid = bits.saturating_sub(i * 64).min(64);
        if valid == 0 {
            break;
        }
        let mask = if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
        count += (w & mask).count_ones() as usize;
    }
    count
}

/// Software reference execution of the query (also the functional body of
/// the SIMD baseline).
pub fn reference_query(
    dailies: &[Vec<Vec<u64>>],
    male: &[u64],
    users: usize,
) -> QueryAnswer {
    let words = male.len();
    let weeklies: Vec<Vec<u64>> = dailies
        .iter()
        .map(|week| {
            let mut acc = vec![0u64; words];
            for day in week {
                for (a, d) in acc.iter_mut().zip(day) {
                    *a |= d;
                }
            }
            acc
        })
        .collect();
    let mut every = vec![u64::MAX; words];
    for weekly in &weeklies {
        for (e, w) in every.iter_mut().zip(weekly) {
            *e &= w;
        }
    }
    let male_active_per_week = weeklies
        .iter()
        .map(|weekly| {
            let and: Vec<u64> = weekly.iter().zip(male).map(|(a, b)| a & b).collect();
            popcount(&and, users)
        })
        .collect();
    QueryAnswer {
        active_every_week: popcount(&every, users),
        male_active_per_week,
    }
}

/// Runs the full Figure 10 experiment: functional Ambit execution with
/// receipt-based timing, baseline timing from the CPU model, and a
/// cross-check of the answers.
///
/// # Panics
///
/// Panics if the Ambit and reference answers disagree, or if the device
/// lacks capacity for the bitmaps.
pub fn run_bitmap_index(
    config: &SystemConfig,
    mem: AmbitMemory,
    workload: &BitmapIndexWorkload,
) -> BitmapIndexResult {
    run_bitmap_index_impl(config, mem, workload, false)
}

/// As [`run_bitmap_index`], but compiles each weekly 7-way OR with the
/// fold optimizer (Section 5.2 copy elimination): the weekly accumulator
/// never leaves the designated rows between days.
pub fn run_bitmap_index_optimized(
    config: &SystemConfig,
    mem: AmbitMemory,
    workload: &BitmapIndexWorkload,
) -> BitmapIndexResult {
    run_bitmap_index_impl(config, mem, workload, true)
}

fn run_bitmap_index_impl(
    config: &SystemConfig,
    mut mem: AmbitMemory,
    workload: &BitmapIndexWorkload,
    fold_weeklies: bool,
) -> BitmapIndexResult {
    let (dailies, male) = workload.generate();
    let reference = reference_query(&dailies, &male, workload.users);

    let u_bytes = workload.users.div_ceil(8);
    let w = workload.weeks;

    // ---------- baseline timing (fused SIMD streaming kernels) ----------
    // Weekly OR: read 7 dailies + write weekly = 8 · u/8 bytes, per week.
    // Every-week AND fused with its count: read w weeklies.
    // Per-week male AND fused with its count: read male + weekly, per week.
    let working_set = (7 * w + w + 2) * u_bytes;
    let weekly_bytes = 8 * u_bytes;
    let mut baseline_s = 0.0;
    for _ in 0..w {
        baseline_s += config.stream_time_s(weekly_bytes, weekly_bytes, working_set);
    }
    baseline_s += config.popcount_time_s(w * u_bytes, working_set);
    baseline_s += config.popcount_time_s(2 * w * u_bytes, working_set);

    // ---------- Ambit execution (functional, receipt-timed) ----------
    let row_bits = mem.row_bits();
    let padded = workload.users.div_ceil(row_bits) * row_bits;
    let to_bits = |v: &[u64]| -> Vec<bool> {
        (0..padded)
            .map(|i| i < workload.users && (v[i / 64] >> (i % 64)) & 1 == 1)
            .collect()
    };

    let male_h = mem.alloc(padded).expect("capacity");
    mem.poke_bits(male_h, &to_bits(&male)).expect("load male");
    let mut daily_handles = Vec::new();
    for week in &dailies {
        let mut row = Vec::new();
        for day in week {
            let h = mem.alloc(padded).expect("capacity");
            mem.poke_bits(h, &to_bits(day)).expect("load day");
            row.push(h);
        }
        daily_handles.push(row);
    }
    let weekly_handles: Vec<_> = (0..w).map(|_| mem.alloc(padded).expect("capacity")).collect();
    let every_h = mem.alloc(padded).expect("capacity");
    let scratch_h = mem.alloc(padded).expect("capacity");

    let mut dram_ops = 0;
    let mut start_ps = None;
    let mut end_ps = 0;
    let track = |r: ambit_core::OpReceipt, start_ps: &mut Option<u64>, end_ps: &mut u64| {
        start_ps.get_or_insert(r.start_ps);
        *end_ps = (*end_ps).max(r.end_ps);
    };

    // 6w ORs: weekly = OR of the 7 dailies (optionally fold-compiled so
    // the accumulator stays in the designated rows).
    for (week, days) in daily_handles.iter().enumerate() {
        let wk = weekly_handles[week];
        if fold_weeklies {
            let r = mem.bitwise_fold(BitwiseOp::Or, days, wk).expect("fold or");
            track(r, &mut start_ps, &mut end_ps);
            dram_ops += days.len() - 1;
        } else {
            let r = mem.bitwise(BitwiseOp::Copy, days[0], None, wk).expect("copy");
            track(r, &mut start_ps, &mut end_ps);
            for &d in &days[1..] {
                let r = mem.bitwise(BitwiseOp::Or, wk, Some(d), wk).expect("or");
                track(r, &mut start_ps, &mut end_ps);
                dram_ops += 1;
            }
        }
    }
    // w−1 ANDs: every-week intersection.
    let r = mem
        .bitwise(BitwiseOp::Copy, weekly_handles[0], None, every_h)
        .expect("copy");
    track(r, &mut start_ps, &mut end_ps);
    for &wk in &weekly_handles[1..] {
        let r = mem.bitwise(BitwiseOp::And, every_h, Some(wk), every_h).expect("and");
        track(r, &mut start_ps, &mut end_ps);
        dram_ops += 1;
    }
    // w ANDs: male ∩ weekly, counted on the CPU.
    let mut male_counts = Vec::new();
    for &wk in &weekly_handles {
        let r = mem.bitwise(BitwiseOp::And, male_h, Some(wk), scratch_h).expect("and");
        track(r, &mut start_ps, &mut end_ps);
        dram_ops += 1;
        male_counts.push(mem.popcount(scratch_h).expect("count"));
    }
    let every_count = mem.popcount(every_h).expect("count");

    let dram_s = (end_ps - start_ps.unwrap_or(0)) as f64 * 1e-12;
    // w+1 bitcounts on the CPU over freshly produced (memory-resident) data.
    let count_s = (w + 1) as f64 * config.popcount_time_s(u_bytes, working_set);
    let ambit_s = dram_s + count_s;

    let answer = QueryAnswer {
        active_every_week: every_count,
        male_active_per_week: male_counts,
    };
    assert_eq!(answer, reference, "Ambit and reference answers diverge");

    BitmapIndexResult {
        baseline_s,
        ambit_s,
        answer,
        dram_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};

    fn small_mem() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry {
                banks: 4,
                subarrays_per_bank: 4,
                rows_per_subarray: 64,
                row_bytes: 512,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn small_workload() -> BitmapIndexWorkload {
        BitmapIndexWorkload {
            users: 10_000,
            weeks: 2,
            daily_activity: 0.3,
            male_fraction: 0.5,
            seed: 42,
        }
    }

    #[test]
    fn reference_query_counts_plausible() {
        let w = small_workload();
        let (dailies, male) = w.generate();
        let ans = reference_query(&dailies, &male, w.users);
        // P(active in a week) = 1 − 0.7^7 ≈ 0.918; every week ≈ 0.842.
        let expect = 0.918f64.powi(2) * w.users as f64;
        assert!(
            (ans.active_every_week as f64 - expect).abs() < 0.05 * w.users as f64,
            "{} vs {expect}",
            ans.active_every_week
        );
        assert_eq!(ans.male_active_per_week.len(), 2);
        for &c in &ans.male_active_per_week {
            // ≈ 0.5 × 0.918 × u.
            assert!((c as f64 - 0.459 * w.users as f64).abs() < 0.05 * w.users as f64);
        }
    }

    #[test]
    fn ambit_matches_reference_on_small_workload() {
        let r = run_bitmap_index(
            &SystemConfig::gem5_calibrated(),
            small_mem(),
            &small_workload(),
        );
        assert_eq!(r.dram_ops, 6 * 2 + (2 * 2 - 1), "6w ORs + (2w−1) ANDs");
        // At 10 k users everything is cache-resident; the baseline is
        // legitimately competitive — only correctness is asserted here.
        assert!(r.ambit_s > 0.0 && r.baseline_s > 0.0);
    }

    #[test]
    fn ambit_wins_at_paper_scale() {
        // Memory-resident bitmaps (>L2 working set) are where Figure 10
        // lives; Ambit should win clearly there.
        let mem = AmbitMemory::new(
            DramGeometry {
                banks: 4,
                subarrays_per_bank: 4,
                rows_per_subarray: 1024,
                row_bytes: 512,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        let w = BitmapIndexWorkload {
            users: 1_200_000,
            ..small_workload()
        };
        let r = run_bitmap_index(&SystemConfig::gem5_calibrated(), mem, &w);
        assert!(r.speedup() > 2.0, "speedup {}", r.speedup());
    }

    #[test]
    fn op_count_matches_paper_formula() {
        for weeks in [2, 3, 4] {
            let w = BitmapIndexWorkload {
                weeks,
                ..small_workload()
            };
            let r = run_bitmap_index(&SystemConfig::gem5_calibrated(), small_mem(), &w);
            assert_eq!(r.dram_ops, 6 * weeks + 2 * weeks - 1);
        }
    }

    #[test]
    fn query_time_grows_with_weeks() {
        // Paper: execution time increases with w (and u).
        let cfg = SystemConfig::gem5_calibrated();
        let short = run_bitmap_index(&cfg, small_mem(), &small_workload());
        let long = run_bitmap_index(
            &cfg,
            small_mem(),
            &BitmapIndexWorkload {
                weeks: 4,
                ..small_workload()
            },
        );
        assert!(long.baseline_s > short.baseline_s);
        assert!(long.ambit_s > short.ambit_s);
    }

    #[test]
    fn optimized_query_matches_and_is_faster_in_dram() {
        let cfg = SystemConfig::gem5_calibrated();
        let plain = run_bitmap_index(&cfg, small_mem(), &small_workload());
        let folded = run_bitmap_index_optimized(&cfg, small_mem(), &small_workload());
        assert_eq!(plain.answer, folded.answer, "same query answers");
        assert!(folded.ambit_s <= plain.ambit_s, "fold never slower in DRAM");
    }

    #[test]
    fn deterministic_workload() {
        let w = small_workload();
        assert_eq!(w.generate(), w.generate());
    }
}
