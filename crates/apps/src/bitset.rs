//! A software bitvector set — the paper's "Bitset" baseline (Section 8.3):
//! a set over domain `1..=N` stored as an `N`-bit vector, with word-wide
//! union/intersection/difference as a 128-bit-SIMD-optimized CPU would
//! execute them.

/// A fixed-domain set of `usize` values in `0..domain`, one bit each.
///
/// # Examples
///
/// ```
/// use ambit_apps::BitSet;
///
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(97);
/// let mut b = BitSet::new(100);
/// b.insert(97);
/// assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![97]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    domain: usize,
}

impl BitSet {
    /// Creates an empty set over `0..domain`.
    pub fn new(domain: usize) -> Self {
        BitSet {
            words: vec![0; domain.div_ceil(64)],
            domain,
        }
    }

    /// The domain size `N`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Bytes of memory the bitvector occupies (for cost models).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Inserts `value`; returns `true` if newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.domain, "value {value} outside domain {}", self.domain);
        let mask = 1u64 << (value % 64);
        let word = &mut self.words[value / 64];
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `value`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(value < self.domain, "value {value} outside domain {}", self.domain);
        let mask = 1u64 << (value % 64);
        let word = &mut self.words[value / 64];
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Membership test (constant time — the bitvector's advantage over
    /// trees for insert/lookup, as the paper notes).
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn contains(&self, value: usize) -> bool {
        assert!(value < self.domain, "value {value} outside domain {}", self.domain);
        self.words[value / 64] >> (value % 64) & 1 == 1
    }

    /// Number of elements (popcount over the vector).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Union: scans both entire bitvectors regardless of population — the
    /// trade-off the paper's Figure 12 explores.
    ///
    /// # Panics
    ///
    /// Panics on domain mismatch.
    pub fn union(&self, other: &BitSet) -> BitSet {
        self.zip(other, |a, b| a | b)
    }

    /// Intersection of two sets over the same domain.
    ///
    /// # Panics
    ///
    /// Panics on domain mismatch.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        self.zip(other, |a, b| a & b)
    }

    /// Elements of `self` not in `other`.
    ///
    /// # Panics
    ///
    /// Panics on domain mismatch.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        self.zip(other, |a, b| a & !b)
    }

    /// In-place union (used for m-way accumulation).
    ///
    /// # Panics
    ///
    /// Panics on domain mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * 64 + bit)
                }
            })
        })
    }

    /// The raw words (LSB-first), e.g. for loading into Ambit memory.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn zip(&self, other: &BitSet, f: impl Fn(u64, u64) -> u64) -> BitSet {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            domain: self.domain,
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let domain = values.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(domain.max(1));
        for v in values {
            set.insert(v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(199));
        assert!(!s.insert(0), "duplicate");
        assert!(s.contains(0) && s.contains(199) && !s.contains(100));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        BitSet::new(10).contains(10);
    }

    #[test]
    fn set_algebra_matches_btreeset() {
        let a_vals: BTreeSet<usize> = [1, 5, 9, 63, 64, 65, 120].into();
        let b_vals: BTreeSet<usize> = [5, 64, 99, 120, 121].into();
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        for &v in &a_vals {
            a.insert(v);
        }
        for &v in &b_vals {
            b.insert(v);
        }
        let got: Vec<usize> = a.union(&b).iter().collect();
        assert_eq!(got, a_vals.union(&b_vals).copied().collect::<Vec<_>>());
        let got: Vec<usize> = a.intersection(&b).iter().collect();
        assert_eq!(got, a_vals.intersection(&b_vals).copied().collect::<Vec<_>>());
        let got: Vec<usize> = a.difference(&b).iter().collect();
        assert_eq!(got, a_vals.difference(&b_vals).copied().collect::<Vec<_>>());
    }

    #[test]
    fn union_with_accumulates() {
        let mut acc = BitSet::new(64);
        for i in 0..4 {
            let mut s = BitSet::new(64);
            s.insert(i * 16);
            acc.union_with(&s);
        }
        assert_eq!(acc.len(), 4);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(1000);
        let values = [0, 1, 63, 64, 512, 999];
        for &v in &values {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), values.to_vec());
    }

    #[test]
    fn from_iterator_sizes_domain() {
        let s: BitSet = [3usize, 17, 9].into_iter().collect();
        assert_eq!(s.domain(), 18);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bytes_reflect_domain() {
        assert_eq!(BitSet::new(512 * 1024).bytes(), 64 * 1024);
    }
}
