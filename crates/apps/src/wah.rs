//! WAH (Word-Aligned Hybrid) compressed bitvectors — the compression used
//! by FastBit, one of the bitmap-index systems the paper names in
//! Section 8.1 (Wu et al., SSDBM'02 is reference [111]).
//!
//! WAH splits a bitvector into 31-bit groups and encodes them as 32-bit
//! words: a *literal* word stores 31 raw bits; a *fill* word run-length
//! encodes consecutive all-zero or all-one groups. Bitwise AND/OR run
//! directly on the compressed form.
//!
//! In the Ambit context this is the interesting CPU-side counterpoint:
//! compression makes sparse bitmaps cheap for the CPU but is opaque to
//! in-DRAM row operations (Ambit computes on uncompressed rows). The
//! `compressed_bitmaps` harness quantifies that trade-off.

/// A WAH-compressed bitvector over a fixed-length domain.
///
/// # Examples
///
/// ```
/// use ambit_apps::WahBitmap;
///
/// let mut a = WahBitmap::new(100_000);
/// a.set(5);
/// a.set(99_999);
/// let b = WahBitmap::from_indices(100_000, &[5, 70_000]);
/// let and = a.and(&b);
/// assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![5]);
/// // Sparse data compresses to a handful of words.
/// assert!(a.compressed_words() < 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    /// Encoded words. Bit 31 set = fill word: bit 30 is the fill value,
    /// bits 0..30 the run length in 31-bit groups. Bit 31 clear = literal:
    /// bits 0..31 are 31 payload bits.
    words: Vec<u32>,
    /// Logical length in bits.
    bits: usize,
}

const GROUP: usize = 31;
const FILL_FLAG: u32 = 1 << 31;
const FILL_VALUE: u32 = 1 << 30;
const LITERAL_MASK: u32 = (1 << 31) - 1;
const MAX_RUN: u32 = (1 << 30) - 1;

impl WahBitmap {
    /// Creates an all-zero bitmap of `bits` bits.
    pub fn new(bits: usize) -> Self {
        let groups = bits.div_ceil(GROUP);
        let mut bitmap = WahBitmap { words: Vec::new(), bits };
        let mut remaining = groups as u32;
        while remaining > 0 {
            let run = remaining.min(MAX_RUN);
            bitmap.words.push(FILL_FLAG | run);
            remaining -= run;
        }
        if groups == 0 {
            bitmap.words.clear();
        }
        bitmap
    }

    /// Builds a bitmap with the given bit indices set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_indices(bits: usize, indices: &[usize]) -> Self {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let groups = bits.div_ceil(GROUP);
        let mut words = Vec::new();
        let mut idx = 0;
        let mut group = 0usize;
        while group < groups {
            // How many consecutive all-zero groups from here?
            let next_set_group = sorted
                .get(idx)
                .map(|&i| {
                    assert!(i < bits, "index {i} out of range {bits}");
                    i / GROUP
                })
                .unwrap_or(groups);
            if next_set_group > group {
                let mut run = (next_set_group - group) as u32;
                while run > 0 {
                    let r = run.min(MAX_RUN);
                    words.push(FILL_FLAG | r);
                    run -= r;
                }
                group = next_set_group;
                continue;
            }
            // Literal group.
            let mut literal = 0u32;
            while idx < sorted.len() && sorted[idx] / GROUP == group {
                literal |= 1 << (sorted[idx] % GROUP);
                idx += 1;
            }
            words.push(literal);
            group += 1;
        }
        let mut bitmap = WahBitmap { words, bits };
        bitmap.coalesce();
        bitmap
    }

    /// Builds a bitmap from a plain bool slice.
    pub fn from_bools(data: &[bool]) -> Self {
        let indices: Vec<usize> = data
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        WahBitmap::from_indices(data.len(), &indices)
    }

    /// Logical length in bits.
    pub fn len_bits(&self) -> usize {
        self.bits
    }

    /// Number of encoded 32-bit words (the compressed size).
    pub fn compressed_words(&self) -> usize {
        self.words.len()
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Sets bit `index` (rebuilds the affected encoding region — WAH is an
    /// append/scan-friendly format, not an update-friendly one).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.bits, "index {index} out of range {}", self.bits);
        let mut ones: Vec<usize> = self.iter_ones().collect();
        match ones.binary_search(&index) {
            Ok(_) => {}
            Err(pos) => {
                ones.insert(pos, index);
                *self = WahBitmap::from_indices(self.bits, &ones);
            }
        }
    }

    /// Tests bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.bits, "index {index} out of range {}", self.bits);
        let target_group = index / GROUP;
        let mut group = 0usize;
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let run = (w & MAX_RUN) as usize;
                if target_group < group + run {
                    return w & FILL_VALUE != 0;
                }
                group += run;
            } else {
                if group == target_group {
                    return w >> (index % GROUP) & 1 == 1;
                }
                group += 1;
            }
        }
        false
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        let mut count = 0;
        let mut group = 0usize;
        let total_groups = self.bits.div_ceil(GROUP);
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let run = (w & MAX_RUN) as usize;
                if w & FILL_VALUE != 0 {
                    // Only count bits within the logical length.
                    for g in group..group + run {
                        count += self.group_width(g, total_groups);
                    }
                }
                group += run;
            } else {
                count += (w & LITERAL_MASK).count_ones() as usize;
                group += 1;
            }
        }
        count
    }

    fn group_width(&self, group: usize, total_groups: usize) -> usize {
        if group + 1 == total_groups && !self.bits.is_multiple_of(GROUP) {
            self.bits % GROUP
        } else {
            GROUP
        }
    }

    /// Iterates over set-bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let mut out = Vec::new();
        let mut group = 0usize;
        let total_groups = self.bits.div_ceil(GROUP);
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let run = (w & MAX_RUN) as usize;
                if w & FILL_VALUE != 0 {
                    for g in group..group + run {
                        let width = self.group_width(g, total_groups);
                        for b in 0..width {
                            out.push(g * GROUP + b);
                        }
                    }
                }
                group += run;
            } else {
                for b in 0..GROUP {
                    if w >> b & 1 == 1 {
                        let i = group * GROUP + b;
                        if i < self.bits {
                            out.push(i);
                        }
                    }
                }
                group += 1;
            }
        }
        out.into_iter()
    }

    /// Compressed-domain AND: walks both encodings without decompressing.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn and(&self, other: &WahBitmap) -> WahBitmap {
        self.merge(other, |a, b| a & b)
    }

    /// Compressed-domain OR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn or(&self, other: &WahBitmap) -> WahBitmap {
        self.merge(other, |a, b| a | b)
    }

    fn merge(&self, other: &WahBitmap, f: impl Fn(u32, u32) -> u32) -> WahBitmap {
        assert_eq!(self.bits, other.bits, "length mismatch");
        let mut out_words = Vec::new();
        let mut cur_a = Cursor::new(&self.words);
        let mut cur_b = Cursor::new(&other.words);
        let total_groups = self.bits.div_ceil(GROUP);
        let mut group = 0usize;
        while group < total_groups {
            let (ga, ra) = cur_a.peek();
            let (gb, rb) = cur_b.peek();
            match (ga, gb) {
                (Word::Fill(va), Word::Fill(vb)) => {
                    let run = ra.min(rb).min(total_groups - group);
                    let value = f(if va { LITERAL_MASK } else { 0 }, if vb { LITERAL_MASK } else { 0 });
                    push_groups(&mut out_words, value, run);
                    cur_a.advance(run);
                    cur_b.advance(run);
                    group += run;
                }
                (a_word, b_word) => {
                    let la = match a_word {
                        Word::Fill(v) => if v { LITERAL_MASK } else { 0 },
                        Word::Literal(l) => l,
                    };
                    let lb = match b_word {
                        Word::Fill(v) => if v { LITERAL_MASK } else { 0 },
                        Word::Literal(l) => l,
                    };
                    push_groups(&mut out_words, f(la, lb) & LITERAL_MASK, 1);
                    cur_a.advance(1);
                    cur_b.advance(1);
                    group += 1;
                }
            }
        }
        let mut out = WahBitmap {
            words: out_words,
            bits: self.bits,
        };
        out.coalesce();
        out
    }

    /// Merges adjacent fills and converts all-zero/all-one literals into
    /// fills (canonical form).
    fn coalesce(&mut self) {
        let mut out: Vec<u32> = Vec::with_capacity(self.words.len());
        for &w in &self.words {
            let (value, run) = if w & FILL_FLAG != 0 {
                (w & FILL_VALUE != 0, w & MAX_RUN)
            } else if w & LITERAL_MASK == 0 {
                (false, 1)
            } else if w & LITERAL_MASK == LITERAL_MASK {
                (true, 1)
            } else {
                out.push(w);
                continue;
            };
            if run == 0 {
                continue;
            }
            if let Some(&last) = out.last() {
                if last & FILL_FLAG != 0
                    && (last & FILL_VALUE != 0) == value
                    && (last & MAX_RUN) + run <= MAX_RUN
                {
                    *out.last_mut().expect("nonempty") = (last & !MAX_RUN) | ((last & MAX_RUN) + run);
                    continue;
                }
            }
            out.push(FILL_FLAG | if value { FILL_VALUE } else { 0 } | run);
        }
        self.words = out;
    }
}

#[derive(Debug, Clone, Copy)]
enum Word {
    Fill(bool),
    Literal(u32),
}

#[derive(Debug)]
struct Cursor<'a> {
    words: &'a [u32],
    index: usize,
    /// Groups already consumed from the current fill word.
    consumed: usize,
}

impl<'a> Cursor<'a> {
    fn new(words: &'a [u32]) -> Self {
        Cursor { words, index: 0, consumed: 0 }
    }

    /// Current word kind and how many groups remain in it (fills may span
    /// many groups; literals always report 1). Past the end: zero fill.
    fn peek(&self) -> (Word, usize) {
        match self.words.get(self.index) {
            None => (Word::Fill(false), usize::MAX),
            Some(&w) if w & FILL_FLAG != 0 => (
                Word::Fill(w & FILL_VALUE != 0),
                (w & MAX_RUN) as usize - self.consumed,
            ),
            Some(&w) => (Word::Literal(w & LITERAL_MASK), 1),
        }
    }

    fn advance(&mut self, groups: usize) {
        let mut left = groups;
        while left > 0 {
            match self.words.get(self.index) {
                None => return,
                Some(&w) if w & FILL_FLAG != 0 => {
                    let remaining = (w & MAX_RUN) as usize - self.consumed;
                    if left < remaining {
                        self.consumed += left;
                        return;
                    }
                    left -= remaining;
                    self.index += 1;
                    self.consumed = 0;
                }
                Some(_) => {
                    left -= 1;
                    self.index += 1;
                }
            }
        }
    }
}

fn push_groups(out: &mut Vec<u32>, literal_value: u32, run: usize) {
    if literal_value == 0 || literal_value == LITERAL_MASK {
        let value_bit = if literal_value == LITERAL_MASK { FILL_VALUE } else { 0 };
        let mut left = run as u32;
        while left > 0 {
            let r = left.min(MAX_RUN);
            out.push(FILL_FLAG | value_bit | r);
            left -= r;
        }
    } else {
        for _ in 0..run {
            out.push(literal_value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_bitmap_is_one_fill() {
        let b = WahBitmap::new(1_000_000);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.compressed_words(), 1, "one fill word covers everything");
        assert!(!b.get(999_999));
    }

    #[test]
    fn sparse_bitmaps_compress_well() {
        let b = WahBitmap::from_indices(512 * 1024, &[17, 100_000, 400_000]);
        assert!(b.compressed_words() <= 7, "{} words", b.compressed_words());
        assert_eq!(b.count_ones(), 3);
        assert!(b.get(17) && b.get(100_000) && b.get(400_000));
        assert!(!b.get(18));
    }

    #[test]
    fn dense_runs_compress_to_fills() {
        let all: Vec<usize> = (0..31 * 100).collect();
        let b = WahBitmap::from_indices(31 * 200, &all);
        assert!(b.compressed_words() <= 3, "{} words", b.compressed_words());
        assert_eq!(b.count_ones(), 3100);
    }

    #[test]
    fn roundtrip_random_bitmaps() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for density in [0.001, 0.05, 0.5, 0.95] {
            let bits = 10_007; // not group aligned
            let data: Vec<bool> = (0..bits).map(|_| rng.gen_bool(density)).collect();
            let b = WahBitmap::from_bools(&data);
            assert_eq!(b.len_bits(), bits);
            assert_eq!(
                b.count_ones(),
                data.iter().filter(|&&x| x).count(),
                "density {density}"
            );
            let ones: Vec<usize> = b.iter_ones().collect();
            let expect: Vec<usize> = data
                .iter()
                .enumerate()
                .filter_map(|(i, &x)| x.then_some(i))
                .collect();
            assert_eq!(ones, expect, "density {density}");
        }
    }

    #[test]
    fn compressed_and_or_match_plain() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let bits = 5000;
        let da: Vec<bool> = (0..bits).map(|_| rng.gen_bool(0.02)).collect();
        let db: Vec<bool> = (0..bits).map(|_| rng.gen_bool(0.3)).collect();
        let a = WahBitmap::from_bools(&da);
        let b = WahBitmap::from_bools(&db);

        let and = a.and(&b);
        let or = a.or(&b);
        for i in 0..bits {
            assert_eq!(and.get(i), da[i] && db[i], "and bit {i}");
            assert_eq!(or.get(i), da[i] || db[i], "or bit {i}");
        }
        assert_eq!(
            and.count_ones(),
            (0..bits).filter(|&i| da[i] && db[i]).count()
        );
    }

    #[test]
    fn fill_fill_fast_path() {
        // Two mostly-empty bitmaps AND in O(compressed) — exercised by the
        // long fills either side of the literals.
        let a = WahBitmap::from_indices(1 << 20, &[500_000]);
        let b = WahBitmap::from_indices(1 << 20, &[500_000, 900_000]);
        let and = a.and(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![500_000]);
        assert!(and.compressed_words() < 10);
    }

    #[test]
    fn set_updates_in_place() {
        let mut b = WahBitmap::new(1000);
        b.set(0);
        b.set(999);
        b.set(999); // idempotent
        assert_eq!(b.count_ones(), 2);
        assert!(b.get(0) && b.get(999));
    }

    #[test]
    fn or_of_complementary_halves_is_full() {
        let bits = 31 * 8;
        let lo: Vec<usize> = (0..bits / 2).collect();
        let hi: Vec<usize> = (bits / 2..bits).collect();
        let a = WahBitmap::from_indices(bits, &lo);
        let b = WahBitmap::from_indices(bits, &hi);
        let or = a.or(&b);
        assert_eq!(or.count_ones(), bits);
        // A full bitmap coalesces back down to a single fill word.
        assert_eq!(or.compressed_words(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        WahBitmap::new(10).get(10);
    }
}
