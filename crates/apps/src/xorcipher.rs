//! Bulk XOR encryption in DRAM (paper Section 8.4.3).
//!
//! Stream/one-time-pad ciphers reduce to `ciphertext = plaintext ⊕
//! keystream` over large buffers — exactly the bulk XOR Ambit accelerates.
//! This module implements an in-memory XOR cipher with a deterministic
//! keystream generator, encrypting entire buffers with in-DRAM operations.

use ambit_core::{AmbitError, AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// Expands a 64-bit key into a keystream of `bits` bits (xorshift64*).
/// Not cryptographically secure — it stands in for a real keystream so the
/// data path (the bulk XOR) can be exercised end to end.
pub fn keystream(key: u64, bits: usize) -> Vec<bool> {
    assert_ne!(key, 0, "xorshift key must be nonzero");
    let mut state = key;
    let mut out = Vec::with_capacity(bits);
    while out.len() < bits {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        for b in 0..64 {
            if out.len() == bits {
                break;
            }
            out.push(word >> b & 1 == 1);
        }
    }
    out
}

/// An XOR cipher operating on buffers resident in Ambit memory.
#[derive(Debug)]
pub struct XorCipher {
    mem: AmbitMemory,
    key_handle: BitVectorHandle,
    buffer_bits: usize,
}

impl XorCipher {
    /// Creates a cipher for buffers of `buffer_bits` bits, loading the
    /// expanded keystream into Ambit memory once.
    ///
    /// # Panics
    ///
    /// Panics if the device lacks capacity or `key` is zero.
    pub fn new(mut mem: AmbitMemory, key: u64, buffer_bits: usize) -> Self {
        let row = mem.row_bits();
        let padded = buffer_bits.div_ceil(row) * row;
        let key_handle = mem.alloc(padded).expect("capacity");
        let mut ks = keystream(key, buffer_bits);
        ks.resize(padded, false);
        mem.poke_bits(key_handle, &ks).expect("load keystream");
        XorCipher {
            mem,
            key_handle,
            buffer_bits,
        }
    }

    /// Buffer size in bits.
    pub fn buffer_bits(&self) -> usize {
        self.buffer_bits
    }

    /// Allocates a buffer co-located with the keystream.
    ///
    /// # Errors
    ///
    /// Returns an out-of-memory error when the device is full.
    pub fn alloc_buffer(&mut self) -> Result<BitVectorHandle, AmbitError> {
        let row = self.mem.row_bits();
        self.mem.alloc(self.buffer_bits.div_ceil(row) * row)
    }

    /// Loads plaintext bytes into a buffer (host write).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the buffer.
    pub fn load(&mut self, buffer: BitVectorHandle, data: &[u8]) -> Result<(), AmbitError> {
        assert!(data.len() * 8 <= self.buffer_bits, "data exceeds buffer");
        let padded = self.mem.len_bits(buffer)?;
        let bits: Vec<bool> = (0..padded)
            .map(|i| i < data.len() * 8 && data[i / 8] >> (i % 8) & 1 == 1)
            .collect();
        self.mem.poke_bits(buffer, &bits)
    }

    /// Reads a buffer back as bytes (host read).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn read(&self, buffer: BitVectorHandle, len: usize) -> Result<Vec<u8>, AmbitError> {
        let bits = self.mem.peek_bits(buffer)?;
        Ok((0..len)
            .map(|byte| {
                (0..8).fold(0u8, |acc, b| {
                    acc | (bits[byte * 8 + b] as u8) << b
                })
            })
            .collect())
    }

    /// Encrypts (or decrypts — XOR is an involution) `src` into `dst` with
    /// one bulk in-DRAM XOR against the keystream.
    ///
    /// # Errors
    ///
    /// Propagates driver/controller errors.
    pub fn apply(
        &mut self,
        src: BitVectorHandle,
        dst: BitVectorHandle,
    ) -> Result<OpReceipt, AmbitError> {
        self.mem.bitwise(BitwiseOp::Xor, src, Some(self.key_handle), dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};

    fn cipher(bits: usize) -> XorCipher {
        let mem = AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        XorCipher::new(mem, 0xdead_beef_cafe_f00d, bits)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut c = cipher(1024);
        let plain: Vec<u8> = (0..128).map(|i| (i * 7 + 13) as u8).collect();
        let src = c.alloc_buffer().unwrap();
        let enc = c.alloc_buffer().unwrap();
        let dec = c.alloc_buffer().unwrap();
        c.load(src, &plain).unwrap();
        c.apply(src, enc).unwrap();
        let ciphertext = c.read(enc, 128).unwrap();
        assert_ne!(ciphertext, plain, "keystream actually changed the data");
        c.apply(enc, dec).unwrap();
        assert_eq!(c.read(dec, 128).unwrap(), plain, "XOR is an involution");
    }

    #[test]
    fn ciphertext_matches_software_xor() {
        let mut c = cipher(512);
        let plain: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let src = c.alloc_buffer().unwrap();
        let enc = c.alloc_buffer().unwrap();
        c.load(src, &plain).unwrap();
        c.apply(src, enc).unwrap();
        let got = c.read(enc, 64).unwrap();
        let ks = keystream(0xdead_beef_cafe_f00d, 512);
        for (byte, &g) in got.iter().enumerate() {
            let mut expect = plain[byte];
            for b in 0..8 {
                if ks[byte * 8 + b] {
                    expect ^= 1 << b;
                }
            }
            assert_eq!(g, expect, "byte {byte}");
        }
    }

    #[test]
    fn keystream_is_deterministic_and_balanced() {
        let a = keystream(42, 4096);
        let b = keystream(42, 4096);
        assert_eq!(a, b);
        let ones = a.iter().filter(|&&x| x).count();
        assert!((ones as f64 - 2048.0).abs() < 200.0, "{ones} ones of 4096");
        assert_ne!(keystream(43, 64), keystream(42, 64));
    }

    #[test]
    fn bulk_xor_uses_figure8c_cost() {
        let mut c = cipher(100); // single row-sized chunk
        let src = c.alloc_buffer().unwrap();
        let enc = c.alloc_buffer().unwrap();
        let r = c.apply(src, enc).unwrap();
        assert_eq!((r.aaps, r.aps), (5, 2), "xor = 5 AAPs + 2 APs per chunk");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_key_rejected() {
        keystream(0, 8);
    }
}
