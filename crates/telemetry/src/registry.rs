//! The instrument registry: named, labelled metric families plus the
//! span/event trace buffer, with Prometheus text and JSONL exporters.
//!
//! Registration is idempotent — asking for the same `(name, labels)` pair
//! twice returns a handle to the same underlying series — so components can
//! resolve their instruments at construction time and share the registry
//! freely. Handles are cheap clones; after registration the hot path only
//! performs relaxed atomic operations and never takes the registry lock.

use std::sync::{Arc, Mutex};

use crate::json;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::{AttrValue, Event, Span};

/// A label set: key/value pairs in insertion order.
pub type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    labels: Labels,
    instrument: Instrument,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Mutex<Vec<Family>>,
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<Event>>,
}

/// A frozen view of one histogram series, for tests and snapshot writers.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Configured upper bounds (`+Inf` excluded).
    pub bounds: Vec<f64>,
    /// Non-cumulative bucket counts; final entry is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

/// A shared registry of metric families and trace records.
///
/// `Registry` is `Clone` (it is an `Arc` internally): hand clones to every
/// instrumented component and render from any of them.
///
/// # Examples
///
/// ```
/// let reg = ambit_telemetry::Registry::new();
/// let acts = reg.counter("ambit_acts_total", "ACT commands issued", &[("bank", "0")]);
/// acts.add(3);
/// let text = reg.render_prometheus();
/// assert!(text.contains("ambit_acts_total{bank=\"0\"} 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(!name.is_empty(), "metric name must not be empty");
        let labels: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.inner.families.lock().expect("registry poisoned");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric '{name}' already registered as a {}, requested as a {}",
                family.kind.as_str(),
                kind.as_str()
            );
            if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
                return series.instrument.clone();
            }
            let instrument = make();
            family.series.push(Series {
                labels,
                instrument: instrument.clone(),
            });
            return instrument;
        }
        let instrument = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![Series {
                labels,
                instrument: instrument.clone(),
            }],
        });
        instrument
    }

    /// Registers (or fetches) a counter series.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind, or if `name` is empty.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, Kind::Counter, || {
            Instrument::Counter(Counter::new())
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or fetches) a gauge series.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind, or if `name` is empty.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, Kind::Gauge, || {
            Instrument::Gauge(Gauge::new())
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or fetches) a histogram series with the given bucket
    /// bounds. When fetching an existing series, the stored bounds win.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind, if `name` is empty, or if `bounds` are invalid (see
    /// [`Histogram::new`]).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.instrument(name, help, labels, Kind::Histogram, || {
            Instrument::Histogram(Histogram::new(bounds))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Records a completed span into the trace buffer.
    pub fn record_span(&self, span: Span) {
        self.inner.spans.lock().expect("registry poisoned").push(span);
    }

    /// Records a point-in-time event into the trace buffer.
    pub fn record_event(&self, event: Event) {
        self.inner
            .events
            .lock()
            .expect("registry poisoned")
            .push(event);
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.lock().expect("registry poisoned").clone()
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().expect("registry poisoned").clone()
    }

    /// Current value of a counter series, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.lookup(name, labels)? {
            Instrument::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Sum of every series in a counter family (e.g. total ACTs across all
    /// per-bank series), if the family is registered.
    pub fn counter_family_total(&self, name: &str) -> Option<u64> {
        let families = self.inner.families.lock().expect("registry poisoned");
        let family = families.iter().find(|f| f.name == name)?;
        if family.kind != Kind::Counter {
            return None;
        }
        Some(
            family
                .series
                .iter()
                .map(|s| match &s.instrument {
                    Instrument::Counter(c) => c.get(),
                    _ => 0,
                })
                .sum(),
        )
    }

    /// Current value of a gauge series, if registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.lookup(name, labels)? {
            Instrument::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// A frozen view of a histogram series, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        match self.lookup(name, labels)? {
            Instrument::Histogram(h) => Some(HistogramSnapshot {
                bounds: h.bounds().to_vec(),
                counts: h.bucket_counts(),
                sum: h.sum(),
                count: h.count(),
            }),
            _ => None,
        }
    }

    fn lookup(&self, name: &str, labels: &[(&str, &str)]) -> Option<Instrument> {
        let families = self.inner.families.lock().expect("registry poisoned");
        let family = families.iter().find(|f| f.name == name)?;
        family
            .series
            .iter()
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.instrument.clone())
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Families appear in registration order, series in registration order
    /// within a family, so output is deterministic for a deterministic run.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.inner.families.lock().expect("registry poisoned");
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.as_str()
            ));
            for series in &family.series {
                match &series.instrument {
                    Instrument::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_block(&series.labels, None),
                            c.get()
                        ));
                    }
                    Instrument::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_block(&series.labels, None),
                            fmt_f64(g.get())
                        ));
                    }
                    Instrument::Histogram(h) => {
                        let cumulative = h.cumulative_counts();
                        for (i, bound) in h.bounds().iter().enumerate() {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                label_block(&series.labels, Some(&fmt_f64(*bound))),
                                cumulative[i]
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            label_block(&series.labels, Some("+Inf")),
                            cumulative[cumulative.len() - 1]
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            label_block(&series.labels, None),
                            fmt_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            label_block(&series.labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// Exports all recorded spans and events as JSON Lines, one record per
    /// line, spans first (recording order), then events.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{}}}\n",
                json::escape(&span.name),
                span.start_ns,
                span.end_ns,
                attrs_json(&span.attrs)
            ));
        }
        for event in self.events() {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"name\":\"{}\",\"at_ns\":{},\"attrs\":{}}}\n",
                json::escape(&event.name),
                event.at_ns,
                attrs_json(&event.attrs)
            ));
        }
        out
    }
}

fn attrs_json(attrs: &[(String, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", json::escape(k)));
        match v {
            AttrValue::Str(s) => out.push_str(&format!("\"{}\"", json::escape(s))),
            AttrValue::Int(n) => out.push_str(&n.to_string()),
            AttrValue::Float(f) => out.push_str(&json::number(*f)),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Formats `{k="v",...}` (empty string when there are no labels), with an
/// optional trailing `le` label for histogram buckets.
fn label_block(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a Prometheus label value (backslash, double-quote, newline).
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Formats an `f64` for exposition using Rust's shortest round-trip form
/// (Prometheus accepts integral values with or without a fraction).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("c_total", "help", &[("bank", "1")]);
        let b = reg.counter("c_total", "help", &[("bank", "1")]);
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("c_total", &[("bank", "1")]), Some(2));
    }

    #[test]
    fn family_total_sums_series() {
        let reg = Registry::new();
        reg.counter("acts_total", "h", &[("bank", "0")]).add(3);
        reg.counter("acts_total", "h", &[("bank", "1")]).add(4);
        assert_eq!(reg.counter_family_total("acts_total"), Some(7));
        assert_eq!(reg.counter_family_total("missing"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("ops_total", "operations", &[("op", "and")]).add(2);
        reg.gauge("degraded", "degraded flag", &[]).set(1.0);
        let h = reg.histogram("lat_ns", "latency", &[], &[50.0, 100.0]);
        h.observe(49.0);
        h.observe(250.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{op=\"and\"} 2"));
        assert!(text.contains("degraded 1"));
        assert!(text.contains("lat_ns_bucket{le=\"50\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum 299"));
        assert!(text.contains("lat_ns_count 2"));
    }

    #[test]
    fn histogram_snapshot_reads_back() {
        let reg = Registry::new();
        let h = reg.histogram("e", "h", &[], &[1.0]);
        h.observe(0.5);
        h.observe(2.0);
        let snap = reg.histogram_snapshot("e", &[]).unwrap();
        assert_eq!(snap.counts, vec![1, 1]);
        assert_eq!(snap.count, 2);
        assert!((snap.sum - 2.5).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trips() {
        use crate::json::Json;
        let reg = Registry::new();
        reg.record_span(Span::new("op", 0, 49).attr("kind", "and").attr("aaps", 4u64));
        reg.record_event(Event::new("inject", 10).attr("stuck", true));
        let jsonl = reg.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let span = Json::parse(lines[0]).unwrap();
        assert_eq!(span.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(span.get("end_ns").unwrap().as_u64(), Some(49));
        assert_eq!(
            span.get("attrs").unwrap().get("aaps").unwrap().as_u64(),
            Some(4)
        );
        let event = Json::parse(lines[1]).unwrap();
        assert_eq!(event.get("attrs").unwrap().get("stuck"), Some(&Json::Bool(true)));
    }
}
