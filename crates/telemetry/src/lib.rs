//! Dependency-free telemetry for the Ambit reproduction.
//!
//! The paper's evaluation (Table 3, Figure 9) is built on *observed*
//! command streams — ACT/PRE counts, wordlines raised, bytes moved, and the
//! energy/latency they imply. This crate provides the instrumentation layer
//! that turns the simulator's execution path into those observations:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free-ish primitives
//!   (relaxed atomics, CAS-accumulated `f64` sums) that components cache as
//!   cheap handles and bump from the DRAM command hot path.
//! * [`Span`] / [`Event`] — trace records denominated in **simulated** DRAM
//!   nanoseconds (from `TimingParams` arithmetic), never wall-clock time,
//!   so traces are deterministic and replayable.
//! * [`Registry`] — named, labelled families with a Prometheus text
//!   exposition ([`Registry::render_prometheus`]) and a JSONL trace export
//!   ([`Registry::export_jsonl`]) for offline analysis.
//! * [`json`] — a minimal escape/parse module so bench snapshots can be
//!   emitted *and validated* without external dependencies.
//!
//! Like the vendored `rand`/`proptest` stubs from PR 1, this crate has no
//! dependencies at all: the repository builds offline.
//!
//! # Examples
//!
//! ```
//! use ambit_telemetry::{Registry, Span};
//!
//! let reg = Registry::new();
//! let acts = reg.counter("ambit_acts_total", "ACT commands", &[("bank", "0")]);
//! acts.add(4);
//! let lat = reg.histogram("ambit_op_latency_ns", "per-op latency", &[], &[50.0, 100.0]);
//! lat.observe(49.0);
//! reg.record_span(Span::new("driver.bitwise", 0, 49).attr("op", "and"));
//!
//! let text = reg.render_prometheus();
//! assert!(text.contains("ambit_acts_total{bank=\"0\"} 4"));
//! assert_eq!(reg.export_jsonl().lines().count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
mod metrics;
mod registry;
mod span;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{HistogramSnapshot, Labels, Registry};
pub use span::{AttrValue, Event, Span};
