//! Spans and events denominated in *simulated* time.
//!
//! The Ambit reproduction is a deterministic simulator: there is no wall
//! clock. Spans therefore carry explicit start/end timestamps in simulated
//! DRAM nanoseconds (derived from `TimingParams` picosecond arithmetic by
//! the instrumented layers), which keeps every run — and every exported
//! trace — bit-for-bit reproducible.

use std::fmt;

/// An attribute value attached to a [`Span`] or [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// An integer attribute.
    Int(i64),
    /// A floating-point attribute.
    Float(f64),
    /// A boolean attribute.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A completed span: a named interval of simulated time with attributes.
///
/// Spans are constructed when the interval is already known (the simulator
/// computes start/end times up front), attributed with the builder-style
/// [`attr`](Span::attr), and recorded into a
/// [`Registry`](crate::Registry), which assigns the id.
///
/// # Examples
///
/// ```
/// use ambit_telemetry::Span;
///
/// let span = Span::new("driver.bitwise", 0, 196)
///     .attr("op", "and")
///     .attr("aaps", 4u64);
/// assert_eq!(span.duration_ns(), 196);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (e.g. `driver.bitwise`).
    pub name: String,
    /// Start of the interval, simulated nanoseconds.
    pub start_ns: u64,
    /// End of the interval, simulated nanoseconds.
    pub end_ns: u64,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl Span {
    /// A span covering `[start_ns, end_ns]` of simulated time.
    pub fn new(name: impl Into<String>, start_ns: u64, end_ns: u64) -> Self {
        Span {
            name: name.into(),
            start_ns,
            end_ns,
            attrs: Vec::new(),
        }
    }

    /// Attaches an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Span duration in simulated nanoseconds (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A point-in-time event with attributes (e.g. a fault injection, a retry).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (e.g. `campaign.stuck_cell`).
    pub name: String,
    /// Simulated time of the event, nanoseconds.
    pub at_ns: u64,
    /// Attributes in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl Event {
    /// An event at `at_ns` of simulated time.
    pub fn new(name: impl Into<String>, at_ns: u64) -> Self {
        Event {
            name: name.into(),
            at_ns,
            attrs: Vec::new(),
        }
    }

    /// Attaches an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_builder_keeps_attr_order() {
        let s = Span::new("x", 10, 30).attr("a", 1u64).attr("b", "two");
        assert_eq!(s.duration_ns(), 20);
        assert_eq!(s.attrs[0], ("a".to_string(), AttrValue::Int(1)));
        assert_eq!(s.attrs[1], ("b".to_string(), AttrValue::Str("two".into())));
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from(3usize), AttrValue::Int(3));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from(1.5), AttrValue::Float(1.5));
    }
}
