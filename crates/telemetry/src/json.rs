//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser for validating emitted snapshots.
//!
//! The repository is built offline with no external dependencies, so the
//! bench snapshot and JSONL trace formats are produced and consumed by this
//! hand-rolled module instead of `serde_json`. It supports exactly the JSON
//! subset the exporters emit: objects, arrays, strings with `\uXXXX`
//! escapes, finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way the exporters do: integral values without a
/// fractional part would still parse as JSON numbers, and non-finite values
/// (not representable in JSON) are mapped to `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap) so comparisons are stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError {
                pos: p.pos,
                msg: "trailing characters after document".into(),
            });
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a map if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our exporters;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction: it came in as &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn u64_accessor_guards_fractions() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("4.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let original = "line1\nline2\t\"quoted\" \\ end";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(original));
    }
}
