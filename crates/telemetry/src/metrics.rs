//! Lock-free-ish metric primitives: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are cheap `Arc` clones, so a component can cache its instruments
//! once and update them from a hot loop (the DRAM command path) with
//! relaxed atomic operations only. Floating-point accumulation uses a
//! compare-and-swap loop on the `f64` bit pattern, which keeps the crate
//! free of external dependencies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Adds `v` to an `f64` stored as its bit pattern in an [`AtomicU64`].
fn add_f64(bits: &AtomicU64, v: f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(current) + v;
        match bits.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// A monotonically increasing counter.
///
/// # Examples
///
/// ```
/// let c = ambit_telemetry::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zero counter (standalone; use [`Registry::counter`]
    /// (crate::Registry::counter) to also expose it).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: f64) {
        add_f64(&self.bits, v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with Prometheus `le` (less-or-equal) bucket
/// semantics: an observation lands in the first bucket whose upper bound is
/// `>=` the value, or the implicit `+Inf` overflow bucket.
///
/// # Examples
///
/// ```
/// let h = ambit_telemetry::Histogram::new(&[1.0, 2.0, 4.0]);
/// h.observe(0.5);
/// h.observe(3.0);
/// h.observe(100.0);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts(), vec![1, 0, 1, 1]); // le=1, le=2, le=4, +Inf
/// assert!((h.sum() - 103.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing
    /// (programmer error at instrument-construction time).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit)"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                total: AtomicU64::new(0),
            }),
        }
    }

    /// `count` buckets of equal `width` starting at `start`:
    /// `start, start+width, …`.
    pub fn linear(start: f64, width: f64, count: usize) -> Self {
        let bounds: Vec<f64> = (0..count).map(|i| start + width * i as f64).collect();
        Histogram::new(&bounds)
    }

    /// `count` geometrically spaced buckets: `start, start·factor, …`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        let mut bound = start;
        let mut bounds = Vec::with_capacity(count);
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.core.bounds.partition_point(|&b| v > b);
        self.core.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.core.total.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.core.sum_bits, v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (the implicit `+Inf` bucket excluded).
    pub fn bounds(&self) -> &[f64] {
        &self.core.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative counts in Prometheus exposition order (`le` buckets then
    /// `+Inf`).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0;
        self.bucket_counts()
            .into_iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        g.set(1.5);
        g.add(-0.5);
        assert!((g.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_le_semantics() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // on the bound: le=1 bucket
        h.observe(1.5);
        h.observe(7.0);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(h.cumulative_counts(), vec![1, 2, 3]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 9.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_helpers() {
        assert_eq!(Histogram::linear(1.0, 1.0, 3).bounds(), &[1.0, 2.0, 3.0]);
        assert_eq!(
            Histogram::exponential(1.0, 2.0, 4).bounds(),
            &[1.0, 2.0, 4.0, 8.0]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn shared_handles_see_each_other() {
        let h = Histogram::new(&[10.0]);
        let h2 = h.clone();
        h.observe(1.0);
        h2.observe(100.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), vec![1, 1]);
    }
}
