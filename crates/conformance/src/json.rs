//! A minimal JSON reader/writer for the self-contained repro format.
//!
//! The build environment is offline (no serde); repro files only need
//! objects, arrays, strings, integers, floats, booleans, and null, so a
//! small recursive-descent parser keeps the crate dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; repro integers stay ≤ 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys, for deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a u64 from either a number or a decimal string.
    /// Full-width 64-bit values (seeds) serialize as strings because f64
    /// numbers are only exact up to 2^53.
    pub fn as_u64_any(&self) -> Option<u64> {
        match self {
            Json::Str(s) => s.parse().ok(),
            _ => self.as_u64(),
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|o| o.get(key))
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes the value as compact JSON.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a number from any unsigned integer.
pub fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Convenience: a full-width 64-bit integer as a decimal string (exact
/// where `Json::Num`'s f64 would round above 2^53). Read back with
/// [`Json::as_u64_any`].
pub fn big(n: u64) -> Json {
    Json::Str(n.to_string())
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c => {
                // Re-assemble UTF-8 multibyte sequences.
                let len = match c {
                    0x00..=0x7f => 0,
                    0xc0..=0xdf => 1,
                    0xe0..=0xef => 2,
                    _ => 3,
                };
                let start = *pos - 1;
                *pos += len;
                let chunk = b.get(start..*pos).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("seed", num(42)),
            ("rate", Json::Num(0.125)),
            ("name", Json::Str("a \"quoted\" name\n".into())),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![num(1), num(2), obj(vec![("k", Json::Str("v".into()))])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nul", "[1 2]", "{}x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("-12.5").unwrap(), Json::Num(-12.5));
    }
}
