//! Differential conformance harness for the Ambit reproduction.
//!
//! The stack now has many ways to execute the same bulk bitwise workload:
//! eager driver calls, the batch engine under serial and bank-parallel
//! issue, the analog charge-sharing model versus its scalar reference, and
//! the fault-tolerant resilient executor. They must all agree — and all of
//! them must drive the DRAM through legal DDR command sequences. This crate
//! closes the loop:
//!
//! * [`generator`] — a seeded, deterministic fuzzer expanding a `u64` seed
//!   into a random but always-valid [`Program`] (random DAG of all ten bulk
//!   ops over randomized allocation sizes, co-location groups, AAP modes,
//!   timing sets, tie-break policies, and optional fault arming);
//! * [`golden`] — a pure-CPU model giving the ground-truth result;
//! * [`oracle`] — the N-way differential runner comparing every execution
//!   path's final memory image against the golden model, and validating
//!   every command trace;
//! * [`trace_check`] — a standalone DDR trace-invariant checker, reusable
//!   against any [`CommandTimer`](ambit_dram::CommandTimer) trace;
//! * [`repro`] — a greedy minimizer plus a self-contained JSON repro format
//!   for deterministic replay of any divergence;
//! * [`refrng`] — the documented xorshift64\* reference RNG shared by the
//!   fuzzer and the fault-model equivalence tests;
//! * [`json`] — the dependency-free JSON reader/writer behind the repro
//!   format.

#![warn(missing_docs)]

pub mod generator;
pub mod golden;
pub mod json;
pub mod oracle;
pub mod program;
pub mod refrng;
pub mod repro;
pub mod trace_check;

pub use generator::{generate, GeneratorConfig};
pub use oracle::{run_oracle, Failure, Mutation, OracleReport};
pub use program::{GeometryKind, ProgOp, Program, TimingKind, VectorSpec};
pub use refrng::{ReferenceRng, DEFAULT_SEED};
pub use repro::{minimize, Repro};
pub use trace_check::{TraceChecker, TraceViolation, ViolationKind};
