//! The N-way differential execution oracle.
//!
//! Runs one [`Program`] through every execution path the stack offers —
//! eager driver calls, the batch engine under all three issue policies
//! (serial, bank-parallel, and the OS-threaded wall-clock path), the
//! device with its analog model replaced by the scalar reference, and (for
//! all-bitwise programs) the resilient executor — and checks every path's
//! final memory image byte-for-byte against the pure-CPU golden model.
//! Every path's command trace is additionally validated by the
//! [`TraceChecker`], so a run that happens to produce the right bits
//! through an illegal command sequence still fails.
//!
//! Fault-armed programs (nonzero TRA fault rate) run through the resilient
//! executor only: the other paths have no recovery story, and the fault
//! RNG draw streams differ per path, so cross-path byte identity is not a
//! meaningful property under injected faults. For those, the oracle checks
//! recovered-result correctness (golden equality unless the executor
//! declared itself degraded) and internal consistency of the recovery
//! report.
//!
//! Profile-armed programs (a `profile_seed`) work the same way, but the
//! fault model is a regenerated device characterization map
//! ([`ChipProfile`]): the resilient path installs variation-aware
//! placement with spare-row pre-remap, arms the per-subarray fault
//! campaign derived from the map, and the oracle additionally checks that
//! the recovery report stays consistent with the driver's bad-row map.

use std::collections::BTreeMap;

use ambit_circuit::{CharacterizationConfig, ChipProfile, CircuitParams};
use ambit_core::{
    synthesize, AllocGroup, AmbitError, AmbitMemory, BatchBuilder, BitVectorHandle, BoolFunc,
    IssuePolicy, PlacementProfile, ResilientConfig, ResilientExecutor, SlotRef, SubarrayLayout,
    SynthOptions, SynthProgram, SynthStep,
};
use ambit_dram::{BankId, CampaignConfig, FaultCampaign};

use crate::golden;
use crate::program::{ProgOp, Program};
use crate::trace_check::TraceChecker;

/// Names of the fault-free execution paths, in oracle order.
pub const FAULT_FREE_PATHS: [&str; 6] = [
    "eager",
    "batch_serial",
    "batch_bank_parallel",
    "batch_threaded",
    "forced_scalar",
    "resilient",
];

/// The fault-armed path name.
pub const RESILIENT_PATH: &str = "resilient";

/// A test-only divergence seed: after `path` finishes, flip bit `bit` of
/// vector `vector`'s readback. Used to prove the oracle detects, minimizes,
/// and deterministically replays real divergences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    /// Which path's readback to corrupt.
    pub path: String,
    /// Vector index to corrupt.
    pub vector: usize,
    /// Bit index to flip.
    pub bit: usize,
}

/// One oracle failure: a divergence, a driver error, a trace violation, or
/// an introspection mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The execution path that failed.
    pub path: String,
    /// Human-readable description.
    pub detail: String,
}

/// The outcome of one oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Everything that went wrong (empty on a conforming run).
    pub failures: Vec<Failure>,
}

impl OracleReport {
    /// Whether the run was fully conforming.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn fail(&mut self, path: &str, detail: String) {
        self.failures.push(Failure { path: path.to_string(), detail });
    }
}

/// Runs the full oracle on `program`, optionally seeding a divergence.
///
/// Fault-free programs run through every applicable path; fault-armed and
/// profile-armed programs run through the resilient executor only (see
/// module docs).
pub fn run_oracle(program: &Program, mutation: Option<&Mutation>) -> OracleReport {
    if program.fault_tra_rate.is_some() || program.profile_seed.is_some() {
        run_fault_armed(program, mutation)
    } else {
        run_differential(program, mutation)
    }
}

fn first_mismatch(got: &[bool], want: &[bool]) -> Option<usize> {
    (0..want.len().max(got.len())).find(|&i| got.get(i) != want.get(i))
}

fn compare(
    report: &mut OracleReport,
    path: &str,
    golden: &[Vec<bool>],
    readback: &[Vec<bool>],
) {
    for (v, want) in golden.iter().enumerate() {
        if let Some(bit) = first_mismatch(&readback[v], want) {
            report.fail(
                path,
                format!(
                    "vector {v} diverges from golden at bit {bit}: got {:?}, want {:?}",
                    readback[v].get(bit),
                    want.get(bit)
                ),
            );
        }
    }
}

fn apply_mutation(
    readback: &mut [Vec<bool>],
    path: &str,
    mutation: Option<&Mutation>,
) {
    if let Some(m) = mutation {
        if m.path == path {
            if let Some(v) = readback.get_mut(m.vector) {
                let len = v.len().max(1);
                if let Some(bit) = v.get_mut(m.bit % len) {
                    *bit = !*bit;
                }
            }
        }
    }
}

/// Builds the memory for one path: geometry, timing, AAP mode, tie-break
/// policy, tracing on.
fn build_memory(program: &Program, forced_scalar: bool) -> AmbitMemory {
    let mut mem = AmbitMemory::new(
        program.geometry.geometry(),
        program.timing.params(),
        program.aap_mode,
    );
    mem.controller_mut().device_mut().set_tie_break(program.tie_break);
    if forced_scalar {
        let geometry = *mem.controller().geometry();
        let device = mem.controller_mut().device_mut();
        for flat in 0..geometry.total_banks() {
            let bank = device.bank_mut(BankId::from_flat_index(flat, &geometry));
            for s in 0..bank.subarray_count() {
                bank.subarray_mut(s).set_scalar_reference(true);
            }
        }
    }
    // Force a multi-worker pool so the batch_threaded path exercises the
    // channel-sharded timing pass (and the pool's merge machinery) even on
    // single-core CI hosts, where the default pool would degrade it to the
    // serial BankParallel code path.
    mem.set_pool_threads(4);
    mem.controller_mut().timer_mut().set_tracing(true);
    mem
}

fn check_trace(report: &mut OracleReport, path: &str, program: &Program, mem: &AmbitMemory) {
    let geometry = program.geometry.geometry();
    // Column bursts serialize per channel, not globally.
    let checker = TraceChecker::new(program.timing.params(), program.aap_mode)
        .with_banks_per_channel(geometry.ranks * geometry.banks);
    let trace = mem.controller().timer().trace().unwrap_or(&[]);
    for violation in checker.check(trace) {
        report.fail(path, format!("trace invariant violated: {violation}"));
    }
}

/// How a path issues the program's ops.
enum Issue {
    Eager,
    Batch(IssuePolicy),
}

/// Scratch pools for synthesized ops, one per vector family
/// `(bits, group)`: plans in the same family share rows, which the
/// engine's sequential hazards keep correct.
type ScratchPools = BTreeMap<(usize, u32), Vec<BitVectorHandle>>;

/// Per-family scratch-row requirement: the max over the family's plans.
type ScratchNeeds = BTreeMap<(usize, u32), usize>;

/// Pre-compiles every [`ProgOp::Synth`] in `program` through the boolean
/// synthesis pipeline. Returns plans index-aligned with `program.ops`
/// (`None` for non-synth ops) and the scratch rows each vector family
/// needs — the max over that family's plans.
fn compile_synth_plans(
    program: &Program,
) -> Result<(Vec<Option<SynthProgram>>, ScratchNeeds), String> {
    let mut plans = Vec::with_capacity(program.ops.len());
    let mut needs: BTreeMap<(usize, u32), usize> = BTreeMap::new();
    for (i, op) in program.ops.iter().enumerate() {
        let ProgOp::Synth { table, inputs, dst } = op else {
            plans.push(None);
            continue;
        };
        let func = BoolFunc::from_table(inputs.len(), *table)
            .map_err(|e| format!("op {i}: truth table rejected: {e}"))?;
        let plan = synthesize(&[func], &SynthOptions::default())
            .map_err(|e| format!("op {i}: synthesis failed: {e}"))?;
        let spec = &program.vectors[*dst];
        let need = needs.entry((spec.bits, spec.group)).or_insert(0);
        *need = (*need).max(plan.scratch_rows());
        plans.push(Some(plan));
    }
    Ok((plans, needs))
}

/// The handle set one synthesized plan executes over: its program inputs,
/// the family scratch pool (truncated to what the plan needs), and the
/// destination vector.
fn synth_bindings<'a>(
    plan: &SynthProgram,
    inputs: &[usize],
    dst: usize,
    handles: &[BitVectorHandle],
    program: &Program,
    pools: &'a ScratchPools,
) -> (Vec<BitVectorHandle>, &'a [BitVectorHandle], [BitVectorHandle; 1]) {
    let ins: Vec<BitVectorHandle> = inputs.iter().map(|&v| handles[v]).collect();
    let spec = &program.vectors[dst];
    let pool = &pools[&(spec.bits, spec.group)][..plan.scratch_rows()];
    (ins, pool, [handles[dst]])
}

fn run_driver_path(
    program: &Program,
    path: &str,
    issue: &Issue,
    forced_scalar: bool,
    report: &mut OracleReport,
) -> Option<Vec<Vec<bool>>> {
    let mut mem = build_memory(program, forced_scalar);
    let mut handles: Vec<BitVectorHandle> = Vec::with_capacity(program.vectors.len());
    for spec in &program.vectors {
        match mem.alloc_in_group(spec.bits, AllocGroup(spec.group)) {
            Ok(h) => handles.push(h),
            Err(e) => {
                report.fail(path, format!("alloc failed: {e}"));
                return None;
            }
        }
    }
    for (spec, &h) in program.vectors.iter().zip(&handles) {
        if let Err(e) = mem.write_bits(h, &spec.initial_data()) {
            report.fail(path, format!("write failed: {e}"));
            return None;
        }
    }
    let (plans, pool_needs) = match compile_synth_plans(program) {
        Ok(compiled) => compiled,
        Err(e) => {
            report.fail(path, e);
            return None;
        }
    };
    let mut pools: ScratchPools = BTreeMap::new();
    for (&(bits, group), &need) in &pool_needs {
        let mut pool = Vec::with_capacity(need);
        for _ in 0..need {
            match mem.alloc_in_group(bits, AllocGroup(group)) {
                Ok(h) => pool.push(h),
                Err(e) => {
                    report.fail(path, format!("scratch alloc failed: {e}"));
                    return None;
                }
            }
        }
        pools.insert((bits, group), pool);
    }

    let run = |mem: &mut AmbitMemory| -> Result<(), String> {
        match issue {
            Issue::Eager => {
                for (i, op) in program.ops.iter().enumerate() {
                    match op {
                        ProgOp::Bitwise { op, src1, src2, dst } => {
                            mem.bitwise(*op, handles[*src1], src2.map(|s| handles[s]), handles[*dst])
                                .map_err(|e| e.to_string())?;
                        }
                        ProgOp::Maj3 { a, b, c, dst } => {
                            mem.bitwise_maj3(handles[*a], handles[*b], handles[*c], handles[*dst])
                                .map_err(|e| e.to_string())?;
                        }
                        ProgOp::Fold { op, srcs, dst } => {
                            let srcs: Vec<_> = srcs.iter().map(|&s| handles[s]).collect();
                            mem.bitwise_fold(*op, &srcs, handles[*dst])
                                .map_err(|e| e.to_string())?;
                        }
                        ProgOp::Synth { inputs, dst, .. } => {
                            let plan = plans[i].as_ref().expect("plan precompiled");
                            let (ins, pool, outs) =
                                synth_bindings(plan, inputs, *dst, &handles, program, &pools);
                            plan.run_eager(mem, &ins, pool, &outs)
                                .map_err(|e| e.to_string())?;
                        }
                    }
                }
            }
            Issue::Batch(policy) => {
                // Built alongside the batch: the handles every emitted
                // step must report reading and writing. Synth ops expand
                // to one entry per compiled step.
                let mut expected: Vec<(Vec<BitVectorHandle>, BitVectorHandle)> = Vec::new();
                let mut batch = BatchBuilder::new();
                for (i, op) in program.ops.iter().enumerate() {
                    match op {
                        ProgOp::Bitwise { op, src1, src2, dst } => {
                            batch.bitwise(
                                *op,
                                handles[*src1],
                                src2.map(|s| handles[s]),
                                handles[*dst],
                            );
                            let mut r = vec![handles[*src1]];
                            r.extend(src2.map(|s| handles[s]));
                            expected.push((r, handles[*dst]));
                        }
                        ProgOp::Maj3 { a, b, c, dst } => {
                            batch.maj3(handles[*a], handles[*b], handles[*c], handles[*dst]);
                            expected.push((
                                vec![handles[*a], handles[*b], handles[*c]],
                                handles[*dst],
                            ));
                        }
                        ProgOp::Fold { op, srcs, dst } => {
                            let srcs: Vec<_> = srcs.iter().map(|&s| handles[s]).collect();
                            batch.fold(*op, &srcs, handles[*dst]);
                            expected.push((srcs, handles[*dst]));
                        }
                        ProgOp::Synth { inputs, dst, .. } => {
                            let plan = plans[i].as_ref().expect("plan precompiled");
                            let (ins, pool, outs) =
                                synth_bindings(plan, inputs, *dst, &handles, program, &pools);
                            plan.emit_into(&mut batch, &ins, pool, &outs)
                                .map_err(|e| e.to_string())?;
                            let resolve = |slot: SlotRef| match slot {
                                SlotRef::Input(j) => ins[j],
                                SlotRef::Scratch(r) => pool[r],
                                SlotRef::Output(k) => outs[k],
                            };
                            for step in plan.steps() {
                                expected.push(match *step {
                                    SynthStep::Bitwise { src1, src2, dst, .. } => {
                                        let mut r = vec![resolve(src1)];
                                        r.extend(src2.map(resolve));
                                        (r, resolve(dst))
                                    }
                                    SynthStep::Maj3 { a, b, c, dst } => (
                                        vec![resolve(a), resolve(b), resolve(c)],
                                        resolve(dst),
                                    ),
                                });
                            }
                        }
                    }
                }
                // The batch's introspection view must agree with the
                // program: same step count, same handles read and written.
                let views = batch.op_views();
                if views.len() != expected.len() {
                    return Err(format!(
                        "batch introspection lists {} steps, program expands to {}",
                        views.len(),
                        expected.len()
                    ));
                }
                for (i, (view, (want_reads, want_writes))) in
                    views.iter().zip(&expected).enumerate()
                {
                    if view.reads != *want_reads || view.writes != *want_writes {
                        return Err(format!("batch introspection mismatch at step {i}"));
                    }
                }
                mem.execute_batch(&batch, *policy).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    };
    if let Err(e) = run(&mut mem) {
        report.fail(path, format!("execution failed: {e}"));
        return None;
    }

    let mut readback = Vec::with_capacity(handles.len());
    for &h in &handles {
        match mem.read_bits(h) {
            Ok(bits) => readback.push(bits),
            Err(e) => {
                report.fail(path, format!("readback failed: {e}"));
                return None;
            }
        }
    }
    check_trace(report, path, program, &mem);
    Some(readback)
}

/// Spare rows reserved per subarray on profile-armed runs, and the cap on
/// weak cells the regenerated map may record per subarray — kept equal so
/// alloc-time pre-remap cannot exhaust spares through the map alone.
const PROFILE_SPARE_ROWS: usize = 3;

/// Monte Carlo trials per subarray when regenerating a profile-armed
/// program's characterization map. Small, because the fuzzer pays this
/// cost once per armed program.
const PROFILE_TRIALS: u64 = 300;

/// Rebuilds the characterization map named by a profile-armed program's
/// seed and arms `mem` with it: variation-aware placement, spare rows for
/// the pre-remap path, and the per-subarray fault campaign derived from
/// the same map. Deterministic per seed.
fn arm_profile(program: &Program, seed: u64, mem: &mut AmbitMemory) -> Result<FaultCampaign, String> {
    let geometry = program.geometry.geometry();
    // Weak cells must stay out of the B/C control group; the first Ambit
    // data row is the first eligible host.
    let first_data_row = SubarrayLayout::new(geometry.rows_per_subarray)
        .data_row(0)
        .map_err(|e| format!("no data rows in geometry: {e}"))?;
    let config = CharacterizationConfig {
        seed,
        first_eligible_row: first_data_row,
        trials_per_subarray: PROFILE_TRIALS,
        max_weak_cells: PROFILE_SPARE_ROWS,
        ..CharacterizationConfig::for_geometry(
            geometry.total_banks(),
            geometry.subarrays_per_bank,
            geometry.rows_per_subarray,
            geometry.row_bits(),
        )
    };
    let chip = ChipProfile::characterize(&CircuitParams::ddr3_55nm(), &config)
        .map_err(|e| format!("characterization failed: {e}"))?;
    mem.install_profile(PlacementProfile {
        order: chip.strength_order(),
        weak_cells: chip.weak_cells(),
        bins: chip.bin_codes(),
    })
    .map_err(|e| format!("profile install failed: {e}"))?;
    mem.reserve_spare_rows(PROFILE_SPARE_ROWS)
        .map_err(|e| format!("spare reservation failed: {e}"))?;
    FaultCampaign::from_profile(
        CampaignConfig {
            seed: seed ^ 0x9E37_79B9_7F4A_7C15,
            base_tra_rate: 0.0,
            stuck_cells_per_subarray: 0,
            weak_cells_per_subarray: 0,
            decay_probability: 0.0,
            first_eligible_row: first_data_row,
            ..CampaignConfig::default()
        },
        &geometry,
        &chip.rates(),
        &chip.weak_cells(),
    )
    .map_err(|e| format!("campaign derivation failed: {e}"))
}

fn run_resilient_path(
    program: &Program,
    report: &mut OracleReport,
) -> Option<(Vec<Vec<bool>>, bool)> {
    let path = RESILIENT_PATH;
    let mut mem = build_memory(program, false);
    if let Some(rate) = program.fault_tra_rate {
        if let Err(e) = mem.set_tra_fault_rate(rate) {
            report.fail(path, format!("fault arming failed: {e}"));
            return None;
        }
    }
    let mut exec = match program.profile_seed {
        Some(seed) => {
            let campaign = match arm_profile(program, seed, &mut mem) {
                Ok(c) => c,
                Err(e) => {
                    report.fail(path, e);
                    return None;
                }
            };
            match ResilientExecutor::with_campaign(mem, ResilientConfig::default(), campaign) {
                Ok(exec) => exec,
                Err(e) => {
                    report.fail(path, format!("campaign arming failed: {e}"));
                    return None;
                }
            }
        }
        None => ResilientExecutor::new(mem, ResilientConfig::default()),
    };
    let mut handles = Vec::with_capacity(program.vectors.len());
    for spec in &program.vectors {
        match exec.alloc(spec.bits) {
            Ok(h) => handles.push(h),
            // TMR needs 3x the rows of the plain paths; a program sized to
            // plain capacity can legitimately overflow here. Skipping the
            // path is a capacity limit, not a conformance divergence. The
            // same goes for alloc-time pre-remap running the spare rows
            // dry on an unlucky profile.
            Err(AmbitError::OutOfMemory { .. })
            | Err(AmbitError::SpareRowsExhausted { .. }) => return None,
            Err(e) => {
                report.fail(path, format!("alloc failed: {e}"));
                return None;
            }
        }
    }
    for (spec, &h) in program.vectors.iter().zip(&handles) {
        if let Err(e) = exec.write(h, &spec.initial_data()) {
            report.fail(path, format!("write failed: {e}"));
            return None;
        }
    }
    for (i, op) in program.ops.iter().enumerate() {
        let ProgOp::Bitwise { op, src1, src2, dst } = op else {
            report.fail(path, format!("op {i} is not resilient-compatible"));
            return None;
        };
        if let Err(e) = exec.bitwise(*op, handles[*src1], src2.map(|s| handles[s]), handles[*dst])
        {
            report.fail(path, format!("execution failed at op {i}: {e}"));
            return None;
        }
    }
    let mut readback = Vec::with_capacity(handles.len());
    for &h in &handles {
        match exec.read(h) {
            Ok(bits) => readback.push(bits),
            Err(e) => {
                report.fail(path, format!("readback failed: {e}"));
                return None;
            }
        }
    }

    // Recovery-report consistency: counters are monotone sums, so any
    // detected fault must be accounted for by at least one recovery action.
    let r = *exec.report();
    if r.faults_detected > 0 && r.retries == 0 && r.cpu_fallbacks == 0 && r.corrected_bits == 0 {
        report.fail(
            path,
            format!(
                "report inconsistency: {} faults detected but no recovery recorded",
                r.faults_detected
            ),
        );
    }
    if program.fault_tra_rate.is_none() && program.profile_seed.is_none() && r.faults_detected > 0
    {
        report.fail(
            path,
            format!("{} faults detected on a fault-free run", r.faults_detected),
        );
    }
    if program.profile_seed.is_some() {
        // Every runtime remap goes through the driver's spare-row path, so
        // the bad-row map must account for at least that many rows (plus
        // any alloc-time pre-remaps).
        let bad_rows = exec.memory().bad_rows().len() as u64;
        if bad_rows < r.remaps {
            report.fail(
                path,
                format!(
                    "report inconsistency: {} remaps recorded but only {bad_rows} bad row(s) mapped",
                    r.remaps
                ),
            );
        }
        if exec.memory().profile().is_none() {
            report.fail(path, "placement profile vanished after arming".into());
        }
    }
    let degraded = exec.is_degraded();
    check_trace(report, path, program, exec.memory());
    Some((readback, degraded))
}

fn run_differential(program: &Program, mutation: Option<&Mutation>) -> OracleReport {
    let mut report = OracleReport::default();
    let golden = golden::run(program);

    let driver_paths: [(&str, Issue, bool); 5] = [
        ("eager", Issue::Eager, false),
        ("batch_serial", Issue::Batch(IssuePolicy::Serial), false),
        ("batch_bank_parallel", Issue::Batch(IssuePolicy::BankParallel), false),
        (
            "batch_threaded",
            Issue::Batch(IssuePolicy::BankParallelThreaded),
            false,
        ),
        ("forced_scalar", Issue::Eager, true),
    ];
    for (path, issue, forced_scalar) in &driver_paths {
        if let Some(mut readback) =
            run_driver_path(program, path, issue, *forced_scalar, &mut report)
        {
            apply_mutation(&mut readback, path, mutation);
            compare(&mut report, path, &golden, &readback);
        }
    }
    if program.resilient_compatible() {
        if let Some((mut readback, _)) = run_resilient_path(program, &mut report) {
            apply_mutation(&mut readback, RESILIENT_PATH, mutation);
            compare(&mut report, RESILIENT_PATH, &golden, &readback);
        }
    }
    report
}

fn run_fault_armed(program: &Program, mutation: Option<&Mutation>) -> OracleReport {
    let mut report = OracleReport::default();
    let golden = golden::run(program);
    if let Some((mut readback, degraded)) = run_resilient_path(program, &mut report) {
        apply_mutation(&mut readback, RESILIENT_PATH, mutation);
        // TMR voting plus retry/scrub must recover the golden result
        // unless the executor explicitly declared the run degraded.
        if !degraded {
            compare(&mut report, RESILIENT_PATH, &golden, &readback);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn small_fault_free_programs_conform() {
        let cfg = GeneratorConfig::default();
        for seed in 1..12 {
            let program = generate(seed, &cfg);
            let report = run_oracle(&program, None);
            assert!(
                report.ok(),
                "seed {seed} diverged:\n{:#?}",
                report.failures
            );
        }
    }

    #[test]
    fn multi_channel_programs_conform() {
        use crate::program::GeometryKind;
        let cfg = GeneratorConfig { multi_channel_chance: 1.0, ..GeneratorConfig::default() };
        let mut dual = 0;
        for seed in 1..10 {
            let program = generate(seed, &cfg);
            assert_eq!(program.geometry, GeometryKind::TinyDual);
            dual += 1;
            let report = run_oracle(&program, None);
            assert!(report.ok(), "seed {seed} diverged:\n{:#?}", report.failures);
        }
        assert!(dual > 0);
    }

    #[test]
    fn synth_armed_programs_conform() {
        let cfg = GeneratorConfig { synth_chance: 1.0, ..GeneratorConfig::default() };
        let mut with_synth = 0;
        for seed in 1..14 {
            let program = generate(seed, &cfg);
            if program.ops.iter().any(|op| matches!(op, ProgOp::Synth { .. })) {
                with_synth += 1;
            }
            let report = run_oracle(&program, None);
            assert!(report.ok(), "seed {seed} diverged:\n{:#?}", report.failures);
        }
        assert!(with_synth > 0, "no synth-armed program in the sweep");
    }

    #[test]
    fn mutation_hook_seeds_a_detectable_divergence() {
        let program = generate(3, &GeneratorConfig::default());
        let mutation = Mutation { path: "eager".into(), vector: 0, bit: 0 };
        let report = run_oracle(&program, Some(&mutation));
        assert!(!report.ok());
        assert!(report.failures.iter().all(|f| f.path == "eager"));
        // The same program without the mutation conforms.
        assert!(run_oracle(&program, None).ok());
    }

    #[test]
    fn profile_armed_programs_recover_or_degrade() {
        let cfg = GeneratorConfig { profile_chance: 1.0, ..GeneratorConfig::default() };
        let mut armed = 0;
        for seed in 1..8 {
            let program = generate(seed, &cfg);
            assert!(program.profile_seed.is_some());
            assert!(program.fault_tra_rate.is_none());
            armed += 1;
            let report = run_oracle(&program, None);
            assert!(report.ok(), "seed {seed} failed:\n{:#?}", report.failures);
            // Same seed, same map, same outcome: the profile replay is
            // deterministic end to end.
            let again = run_oracle(&program, None);
            assert_eq!(again.ok(), report.ok());
        }
        assert!(armed > 0);
    }

    #[test]
    fn fault_armed_programs_recover_or_degrade() {
        let cfg = GeneratorConfig { fault_chance: 1.0, ..GeneratorConfig::default() };
        let mut armed = 0;
        for seed in 1..10 {
            let program = generate(seed, &cfg);
            assert!(program.fault_tra_rate.is_some());
            armed += 1;
            let report = run_oracle(&program, None);
            assert!(report.ok(), "seed {seed} failed:\n{:#?}", report.failures);
        }
        assert!(armed > 0);
    }
}
