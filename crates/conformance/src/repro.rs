//! Minimizing repro capture and deterministic replay.
//!
//! When the oracle reports a divergence, [`Repro::capture`] greedily
//! delta-debugs the program — dropping ops from the back, garbage-collecting
//! unreferenced vectors, and shrinking vector lengths — while re-running the
//! oracle after every candidate edit so only failure-preserving reductions
//! survive. The result serializes to a self-contained JSON document (seed,
//! environment, allocation plan, ops, optional mutation, and the observed
//! failures) that replays bit-identically on any machine.

use crate::json::{self, Json};
use crate::oracle::{run_oracle, Failure, Mutation, OracleReport};
use crate::program::Program;

/// A self-contained, minimized failure reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The minimized program.
    pub program: Program,
    /// The test-only divergence seed, when the failure was planted.
    pub mutation: Option<Mutation>,
    /// The failures observed on the minimized program.
    pub failures: Vec<Failure>,
}

fn fails(program: &Program, mutation: Option<&Mutation>) -> Option<OracleReport> {
    let report = run_oracle(program, mutation);
    (!report.ok()).then_some(report)
}

/// Greedily minimizes `program` while it keeps failing the oracle under
/// `mutation`. Returns the reduced program and the (possibly re-indexed)
/// mutation. The input must already fail; the output is guaranteed to.
pub fn minimize(
    program: &Program,
    mutation: Option<&Mutation>,
) -> (Program, Option<Mutation>) {
    let mut best = program.clone();
    let mut mutation = mutation.cloned();
    debug_assert!(fails(&best, mutation.as_ref()).is_some());

    // 1. Drop ops, last to first (later ops can't feed earlier ones, so a
    //    single reverse pass converges).
    let mut i = best.ops.len();
    while i > 0 {
        i -= 1;
        if best.ops.len() == 1 {
            break;
        }
        let mut candidate = best.clone();
        candidate.ops.remove(i);
        if candidate.validate().is_ok() && fails(&candidate, mutation.as_ref()).is_some() {
            best = candidate;
        }
    }

    // 2. Garbage-collect vectors no remaining op touches (re-indexing ops
    //    and the mutation).
    let mut v = best.vectors.len();
    while v > 0 {
        v -= 1;
        let touched = best.ops.iter().any(|op| op.touched().contains(&v));
        let pinned = mutation.as_ref().is_some_and(|m| m.vector == v);
        if touched || pinned || best.vectors.len() == 1 {
            continue;
        }
        let mut candidate = best.clone();
        candidate.vectors.remove(v);
        for op in &mut candidate.ops {
            remap_indices(op, v);
        }
        let remapped = mutation.clone().map(|mut m| {
            if m.vector > v {
                m.vector -= 1;
            }
            m
        });
        if candidate.validate().is_ok() && fails(&candidate, remapped.as_ref()).is_some() {
            best = candidate;
            mutation = remapped;
        }
    }

    // 3. Shrink vector lengths family-by-family (all vectors sharing a
    //    (bits, group) family must shrink together to stay co-locatable).
    let mut families: Vec<(usize, u32)> = best
        .vectors
        .iter()
        .map(|spec| (spec.bits, spec.group))
        .collect();
    families.sort_unstable();
    families.dedup();
    for (bits, group) in families {
        let mut current = bits;
        while current > 1 {
            let next = current / 2;
            let mut candidate = best.clone();
            for spec in &mut candidate.vectors {
                if spec.bits == current && spec.group == group {
                    spec.bits = next;
                }
            }
            if fails(&candidate, mutation.as_ref()).is_some() {
                best = candidate;
                current = next;
            } else {
                break;
            }
        }
    }

    debug_assert!(fails(&best, mutation.as_ref()).is_some());
    (best, mutation)
}

impl Repro {
    /// Runs the oracle on `program`; on failure, minimizes and captures a
    /// repro. Returns `None` when the program conforms.
    pub fn capture(program: &Program, mutation: Option<&Mutation>) -> Option<Repro> {
        fails(program, mutation)?;
        let (program, mutation) = minimize(program, mutation);
        let failures = run_oracle(&program, mutation.as_ref()).failures;
        Some(Repro { program, mutation, failures })
    }

    /// Re-runs the oracle on the stored program and mutation.
    pub fn replay(&self) -> OracleReport {
        run_oracle(&self.program, self.mutation.as_ref())
    }

    /// Whether a replay reproduces the recorded failure: the run must fail,
    /// on the same set of paths the capture recorded.
    pub fn reproduces(&self) -> bool {
        let report = self.replay();
        if report.ok() {
            return false;
        }
        let paths = |fs: &[Failure]| {
            let mut p: Vec<&str> = fs.iter().map(|f| f.path.as_str()).collect();
            p.sort_unstable();
            p.dedup();
            p.into_iter().map(String::from).collect::<Vec<_>>()
        };
        paths(&report.failures) == paths(&self.failures)
    }

    /// Serializes the repro to its JSON document.
    pub fn to_json(&self) -> Json {
        json::obj(vec![
            ("format", Json::Str("ambit-conformance-repro-v1".into())),
            ("program", self.program.to_json()),
            (
                "mutation",
                self.mutation.as_ref().map_or(Json::Null, |m| {
                    json::obj(vec![
                        ("path", Json::Str(m.path.clone())),
                        ("vector", json::num(m.vector as u64)),
                        ("bit", json::num(m.bit as u64)),
                    ])
                }),
            ),
            (
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            json::obj(vec![
                                ("path", Json::Str(f.path.clone())),
                                ("detail", Json::Str(f.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a repro from JSON text.
    ///
    /// # Errors
    ///
    /// A description of the first structural defect.
    pub fn from_json_text(text: &str) -> Result<Repro, String> {
        let doc = json::parse(text)?;
        if doc.get("format").and_then(Json::as_str) != Some("ambit-conformance-repro-v1") {
            return Err("not an ambit-conformance-repro-v1 document".into());
        }
        let program = Program::from_json(doc.get("program").ok_or("missing program")?)?;
        let mutation = match doc.get("mutation") {
            None | Some(Json::Null) => None,
            Some(m) => Some(Mutation {
                path: m
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("bad mutation path")?
                    .to_string(),
                vector: m.get("vector").and_then(Json::as_u64).ok_or("bad mutation vector")?
                    as usize,
                bit: m.get("bit").and_then(Json::as_u64).ok_or("bad mutation bit")? as usize,
            }),
        };
        let failures = doc
            .get("failures")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|f| {
                Ok(Failure {
                    path: f
                        .get("path")
                        .and_then(Json::as_str)
                        .ok_or("bad failure path")?
                        .to_string(),
                    detail: f
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Repro { program, mutation, failures })
    }
}

/// Rewrites an op's vector indices after removing vector `removed`.
fn remap_indices(op: &mut crate::program::ProgOp, removed: usize) {
    use crate::program::ProgOp;
    let fix = |i: &mut usize| {
        if *i > removed {
            *i -= 1;
        }
    };
    match op {
        ProgOp::Bitwise { src1, src2, dst, .. } => {
            fix(src1);
            if let Some(s) = src2 {
                fix(s);
            }
            fix(dst);
        }
        ProgOp::Maj3 { a, b, c, dst } => {
            fix(a);
            fix(b);
            fix(c);
            fix(dst);
        }
        ProgOp::Fold { srcs, dst, .. } => {
            srcs.iter_mut().for_each(fix);
            fix(dst);
        }
        ProgOp::Synth { inputs, dst, .. } => {
            inputs.iter_mut().for_each(fix);
            fix(dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    /// A seed whose program has several ops and vectors, so minimization
    /// has something to chew on.
    fn fat_program() -> Program {
        let cfg = GeneratorConfig { ops: (6, 12), ..GeneratorConfig::default() }
;
        (1..100)
            .map(|s| generate(s, &cfg))
            .find(|p| p.ops.len() >= 6 && p.vectors.len() >= 4)
            .expect("seed space contains a fat program")
    }

    #[test]
    fn capture_minimizes_and_replays_deterministically() {
        let program = fat_program();
        let mutation = Mutation { path: "batch_serial".into(), vector: 0, bit: 3 };
        let repro = Repro::capture(&program, Some(&mutation)).expect("mutation must fail");
        assert!(repro.program.ops.len() < program.ops.len());
        assert!(repro.reproduces());

        // Round-trip through JSON and replay again.
        let text = repro.to_json().to_string();
        let back = Repro::from_json_text(&text).unwrap();
        assert_eq!(back, repro);
        assert!(back.reproduces());
    }

    #[test]
    fn conforming_programs_capture_nothing() {
        let program = generate(1, &GeneratorConfig::default());
        assert!(Repro::capture(&program, None).is_none());
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(Repro::from_json_text("{}").is_err());
        assert!(Repro::from_json_text("[1,2]").is_err());
        assert!(Repro::from_json_text("{\"format\":\"other\"}").is_err());
    }
}
