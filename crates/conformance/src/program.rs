//! The conformance program model: a self-contained description of a bulk
//! bitwise workload, its environment, and its initial data.
//!
//! A [`Program`] is everything needed to rebuild a run bit-for-bit on any
//! execution path: device geometry and timing by name, AAP mode, tie-break
//! policy, optional fault arming, the allocation plan (sizes and
//! co-location groups), deterministic per-vector initial data (derived from
//! a seed, never stored raw), and the operation list. Programs serialize to
//! a small JSON document — the payload of the minimized repro files the
//! oracle writes on divergence.

use ambit_core::BitwiseOp;
use ambit_dram::{AapMode, DramGeometry, TieBreak, TimingParams};

use crate::json::{self, Json};
use crate::refrng::ReferenceRng;

/// Device geometry, by name (the repro format never embeds raw field
/// values, so geometry changes in the model invalidate repros loudly
/// rather than silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryKind {
    /// [`DramGeometry::tiny`]: 2 banks × 2 subarrays × 32 rows × 128 bits.
    Tiny,
    /// [`DramGeometry::tiny_dual_channel`]: the two-channel tiny variant.
    /// The smallest geometry with more than one command bus, so oracle runs
    /// over it exercise per-channel timing lanes and the channel-sharded
    /// threaded batch path.
    TinyDual,
    /// [`DramGeometry::micro17`]: the paper's full-size module.
    Micro17,
}

impl GeometryKind {
    /// The concrete geometry.
    pub fn geometry(self) -> DramGeometry {
        match self {
            GeometryKind::Tiny => DramGeometry::tiny(),
            GeometryKind::TinyDual => DramGeometry::tiny_dual_channel(),
            GeometryKind::Micro17 => DramGeometry::micro17(),
        }
    }

    /// Serialized name.
    pub fn name(self) -> &'static str {
        match self {
            GeometryKind::Tiny => "tiny",
            GeometryKind::TinyDual => "tiny2ch",
            GeometryKind::Micro17 => "micro17",
        }
    }

    /// Parses a serialized name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "tiny" => Some(GeometryKind::Tiny),
            "tiny2ch" => Some(GeometryKind::TinyDual),
            "micro17" => Some(GeometryKind::Micro17),
            _ => None,
        }
    }
}

/// Timing parameter set, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingKind {
    /// DDR3-1600 (the paper's primary configuration).
    Ddr3_1600,
    /// DDR3-1333.
    Ddr3_1333,
    /// DDR4-2400.
    Ddr4_2400,
}

impl TimingKind {
    /// Every timing set the generator samples from.
    pub const ALL: [TimingKind; 3] =
        [TimingKind::Ddr3_1600, TimingKind::Ddr3_1333, TimingKind::Ddr4_2400];

    /// The concrete timing parameters.
    pub fn params(self) -> TimingParams {
        match self {
            TimingKind::Ddr3_1600 => TimingParams::ddr3_1600(),
            TimingKind::Ddr3_1333 => TimingParams::ddr3_1333(),
            TimingKind::Ddr4_2400 => TimingParams::ddr4_2400(),
        }
    }

    /// Serialized name.
    pub fn name(self) -> &'static str {
        match self {
            TimingKind::Ddr3_1600 => "ddr3_1600",
            TimingKind::Ddr3_1333 => "ddr3_1333",
            TimingKind::Ddr4_2400 => "ddr4_2400",
        }
    }

    /// Parses a serialized name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ddr3_1600" => Some(TimingKind::Ddr3_1600),
            "ddr3_1333" => Some(TimingKind::Ddr3_1333),
            "ddr4_2400" => Some(TimingKind::Ddr4_2400),
            _ => None,
        }
    }
}

/// One allocated bitvector: its length, its co-location group, and the seed
/// its initial contents derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorSpec {
    /// Length in bits.
    pub bits: usize,
    /// Driver allocation group (vectors sharing a group and a length are
    /// chunk-wise co-located and may be operands of one in-DRAM op).
    pub group: u32,
    /// Seed of the deterministic initial bit pattern
    /// ([`ReferenceRng::with_seed`]).
    pub data_seed: u64,
}

impl VectorSpec {
    /// The vector's deterministic initial contents.
    pub fn initial_data(&self) -> Vec<bool> {
        ReferenceRng::with_seed(self.data_seed).bits(self.bits)
    }
}

/// One bulk operation over vector indices (into [`Program::vectors`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgOp {
    /// `dst = op(src1, src2)` — covers all seven Figure 9 ops plus copy and
    /// the two init ops.
    Bitwise {
        /// The operation.
        op: BitwiseOp,
        /// First source vector index.
        src1: usize,
        /// Second source vector index, for two-operand ops.
        src2: Option<usize>,
        /// Destination vector index.
        dst: usize,
    },
    /// `dst = majority(a, b, c)` — the raw TRA primitive.
    Maj3 {
        /// First input vector index.
        a: usize,
        /// Second input vector index.
        b: usize,
        /// Third input vector index.
        c: usize,
        /// Destination vector index.
        dst: usize,
    },
    /// `dst = srcs[0] op … op srcs[k−1]` (associative fold; `op` is
    /// restricted to AND/OR by the compiler).
    Fold {
        /// The fold operation.
        op: BitwiseOp,
        /// Source vector indices (≥ 2).
        srcs: Vec<usize>,
        /// Destination vector index.
        dst: usize,
    },
    /// `dst = f(inputs…)` for an arbitrary truth table, synthesized to
    /// MAJ/NOT microprograms by [`ambit_core::synth`] at execution time.
    /// Input `j` of an assignment contributes bit `j` of the minterm index;
    /// the result bit is bit `index` of `table`.
    Synth {
        /// The truth table over `inputs.len()` variables.
        table: u64,
        /// Input vector indices (1 ..= 5; inputs may repeat).
        inputs: Vec<usize>,
        /// Destination vector index (may alias an input; the synthesized
        /// program reads all inputs before its trailing output write).
        dst: usize,
    },
}

impl ProgOp {
    /// Every vector index the op touches (sources then destination).
    pub fn touched(&self) -> Vec<usize> {
        match self {
            ProgOp::Bitwise { src1, src2, dst, .. } => {
                let mut v = vec![*src1];
                v.extend(*src2);
                v.push(*dst);
                v
            }
            ProgOp::Maj3 { a, b, c, dst } => vec![*a, *b, *c, *dst],
            ProgOp::Fold { srcs, dst, .. } => {
                let mut v = srcs.clone();
                v.push(*dst);
                v
            }
            ProgOp::Synth { inputs, dst, .. } => {
                let mut v = inputs.clone();
                v.push(*dst);
                v
            }
        }
    }
}

/// A complete, self-contained conformance program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The generator seed this program came from (provenance only; replay
    /// reconstructs nothing from it).
    pub seed: u64,
    /// Device geometry.
    pub geometry: GeometryKind,
    /// Timing parameter set.
    pub timing: TimingKind,
    /// AAP issue mode.
    pub aap_mode: AapMode,
    /// Charge-sharing tie-break policy (ties are impossible for the
    /// programs the generator emits, so every policy must agree).
    pub tie_break: TieBreak,
    /// Per-bit TRA fault rate, when the program runs fault-armed (such
    /// programs go through the resilient executor only).
    pub fault_tra_rate: Option<f64>,
    /// Seed of a device characterization map
    /// ([`ChipProfile`](ambit_circuit::ChipProfile)) the resilient path
    /// regenerates and arms before running: variation-aware placement,
    /// spare-row pre-remap, and a per-subarray fault campaign derived from
    /// the map. Profile-armed programs go through the resilient executor
    /// only, like fault-armed ones.
    pub profile_seed: Option<u64>,
    /// The allocation plan.
    pub vectors: Vec<VectorSpec>,
    /// The operation list, executed in order (parallel paths must preserve
    /// its data dependencies).
    pub ops: Vec<ProgOp>,
}

impl Program {
    /// Deterministic initial contents of every vector.
    pub fn initial_data(&self) -> Vec<Vec<bool>> {
        self.vectors.iter().map(VectorSpec::initial_data).collect()
    }

    /// Whether every op is expressible through the resilient executor
    /// (which only exposes the plain `bitwise` entry point).
    pub fn resilient_compatible(&self) -> bool {
        self.ops.iter().all(|op| matches!(op, ProgOp::Bitwise { .. }))
    }

    /// Structural validation: every op's vector indices exist, operands of
    /// one op share a length and a co-location group (the driver would
    /// reject anything else), arities match, and folds use supported ops.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first defect.
    pub fn validate(&self) -> Result<(), String> {
        if self.vectors.is_empty() {
            return Err("program has no vectors".into());
        }
        if self.ops.is_empty() {
            return Err("program has no ops".into());
        }
        for (i, op) in self.ops.iter().enumerate() {
            let touched = op.touched();
            for &v in &touched {
                if v >= self.vectors.len() {
                    return Err(format!("op {i} references missing vector {v}"));
                }
            }
            let first = &self.vectors[touched[0]];
            for &v in &touched[1..] {
                let spec = &self.vectors[v];
                if spec.bits != first.bits || spec.group != first.group {
                    return Err(format!(
                        "op {i} mixes families: vector {v} is ({}, group {}), expected ({}, group {})",
                        spec.bits, spec.group, first.bits, first.group
                    ));
                }
            }
            match op {
                ProgOp::Bitwise { op, src2, .. } => {
                    let need = op.source_count();
                    let got = 1 + usize::from(src2.is_some());
                    if need == 2 && src2.is_none() || need < 2 && src2.is_some() {
                        return Err(format!("op {i}: {op} expects {need} source(s), got {got}"));
                    }
                }
                ProgOp::Maj3 { .. } => {}
                ProgOp::Fold { op, srcs, .. } => {
                    if !matches!(op, BitwiseOp::And | BitwiseOp::Or) {
                        return Err(format!("op {i}: fold does not support {op}"));
                    }
                    if srcs.len() < 2 {
                        return Err(format!("op {i}: fold needs ≥ 2 sources"));
                    }
                }
                ProgOp::Synth { table, inputs, .. } => {
                    if inputs.is_empty() || inputs.len() > 5 {
                        return Err(format!(
                            "op {i}: synth takes 1..=5 inputs, got {}",
                            inputs.len()
                        ));
                    }
                    let minterms = 1u64 << inputs.len();
                    if table >> minterms != 0 {
                        return Err(format!(
                            "op {i}: synth table {table:#x} has bits beyond its {minterms} minterms"
                        ));
                    }
                }
            }
        }
        if let Some(rate) = self.fault_tra_rate {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// Serializes the program to its JSON document.
    pub fn to_json(&self) -> Json {
        json::obj(vec![
            ("seed", json::big(self.seed)),
            ("geometry", Json::Str(self.geometry.name().into())),
            ("timing", Json::Str(self.timing.name().into())),
            (
                "aap_mode",
                Json::Str(
                    match self.aap_mode {
                        AapMode::Naive => "naive",
                        AapMode::Overlapped => "overlapped",
                    }
                    .into(),
                ),
            ),
            (
                "tie_break",
                Json::Str(
                    match self.tie_break {
                        TieBreak::Error => "error",
                        TieBreak::Zero => "zero",
                        TieBreak::One => "one",
                        TieBreak::Random => "random",
                    }
                    .into(),
                ),
            ),
            (
                "fault_tra_rate",
                self.fault_tra_rate.map_or(Json::Null, Json::Num),
            ),
            (
                "profile_seed",
                self.profile_seed.map_or(Json::Null, json::big),
            ),
            (
                "vectors",
                Json::Arr(
                    self.vectors
                        .iter()
                        .map(|v| {
                            json::obj(vec![
                                ("bits", json::num(v.bits as u64)),
                                ("group", json::num(u64::from(v.group))),
                                ("data_seed", json::big(v.data_seed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ops",
                Json::Arr(self.ops.iter().map(op_to_json).collect()),
            ),
        ])
    }

    /// Deserializes a program from its JSON document and validates it.
    ///
    /// # Errors
    ///
    /// A description of the first structural or semantic defect.
    pub fn from_json(doc: &Json) -> Result<Program, String> {
        let geometry = doc
            .get("geometry")
            .and_then(Json::as_str)
            .and_then(GeometryKind::from_name)
            .ok_or("bad or missing geometry")?;
        let timing = doc
            .get("timing")
            .and_then(Json::as_str)
            .and_then(TimingKind::from_name)
            .ok_or("bad or missing timing")?;
        let aap_mode = match doc.get("aap_mode").and_then(Json::as_str) {
            Some("naive") => AapMode::Naive,
            Some("overlapped") => AapMode::Overlapped,
            _ => return Err("bad or missing aap_mode".into()),
        };
        let tie_break = match doc.get("tie_break").and_then(Json::as_str) {
            Some("error") => TieBreak::Error,
            Some("zero") => TieBreak::Zero,
            Some("one") => TieBreak::One,
            Some("random") => TieBreak::Random,
            _ => return Err("bad or missing tie_break".into()),
        };
        let fault_tra_rate = match doc.get("fault_tra_rate") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_f64().ok_or("bad fault_tra_rate")?),
        };
        // Missing-key tolerant so repros predating the field still load.
        let profile_seed = match doc.get("profile_seed") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64_any().ok_or("bad profile_seed")?),
        };
        let vectors = doc
            .get("vectors")
            .and_then(Json::as_arr)
            .ok_or("missing vectors")?
            .iter()
            .map(|v| {
                Ok(VectorSpec {
                    bits: v.get("bits").and_then(Json::as_u64).ok_or("bad vector bits")? as usize,
                    group: v.get("group").and_then(Json::as_u64).ok_or("bad vector group")? as u32,
                    data_seed: v
                        .get("data_seed")
                        .and_then(Json::as_u64_any)
                        .ok_or("bad vector data_seed")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let ops = doc
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("missing ops")?
            .iter()
            .map(op_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        let program = Program {
            seed: doc.get("seed").and_then(Json::as_u64_any).unwrap_or(0),
            geometry,
            timing,
            aap_mode,
            tie_break,
            fault_tra_rate,
            profile_seed,
            vectors,
            ops,
        };
        program.validate()?;
        Ok(program)
    }
}

/// Parses a bbop mnemonic back into its [`BitwiseOp`].
pub fn op_from_mnemonic(name: &str) -> Option<BitwiseOp> {
    const ALL: [BitwiseOp; 10] = [
        BitwiseOp::Not,
        BitwiseOp::And,
        BitwiseOp::Or,
        BitwiseOp::Nand,
        BitwiseOp::Nor,
        BitwiseOp::Xor,
        BitwiseOp::Xnor,
        BitwiseOp::Copy,
        BitwiseOp::InitZero,
        BitwiseOp::InitOne,
    ];
    ALL.into_iter().find(|op| op.mnemonic() == name)
}

fn op_to_json(op: &ProgOp) -> Json {
    match op {
        ProgOp::Bitwise { op, src1, src2, dst } => json::obj(vec![
            ("kind", Json::Str("bitwise".into())),
            ("op", Json::Str(op.mnemonic().into())),
            ("src1", json::num(*src1 as u64)),
            ("src2", src2.map_or(Json::Null, |s| json::num(s as u64))),
            ("dst", json::num(*dst as u64)),
        ]),
        ProgOp::Maj3 { a, b, c, dst } => json::obj(vec![
            ("kind", Json::Str("maj3".into())),
            ("a", json::num(*a as u64)),
            ("b", json::num(*b as u64)),
            ("c", json::num(*c as u64)),
            ("dst", json::num(*dst as u64)),
        ]),
        ProgOp::Fold { op, srcs, dst } => json::obj(vec![
            ("kind", Json::Str("fold".into())),
            ("op", Json::Str(op.mnemonic().into())),
            (
                "srcs",
                Json::Arr(srcs.iter().map(|&s| json::num(s as u64)).collect()),
            ),
            ("dst", json::num(*dst as u64)),
        ]),
        ProgOp::Synth { table, inputs, dst } => json::obj(vec![
            ("kind", Json::Str("synth".into())),
            // Truth tables can use all 64 bits; serialize like the seeds.
            ("table", json::big(*table)),
            (
                "inputs",
                Json::Arr(inputs.iter().map(|&s| json::num(s as u64)).collect()),
            ),
            ("dst", json::num(*dst as u64)),
        ]),
    }
}

fn op_from_json(doc: &Json) -> Result<ProgOp, String> {
    let idx = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or(format!("bad op field {key}"))
    };
    match doc.get("kind").and_then(Json::as_str) {
        Some("bitwise") => Ok(ProgOp::Bitwise {
            op: doc
                .get("op")
                .and_then(Json::as_str)
                .and_then(op_from_mnemonic)
                .ok_or("bad bitwise op")?,
            src1: idx("src1")?,
            src2: match doc.get("src2") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or("bad src2")? as usize),
            },
            dst: idx("dst")?,
        }),
        Some("maj3") => Ok(ProgOp::Maj3 {
            a: idx("a")?,
            b: idx("b")?,
            c: idx("c")?,
            dst: idx("dst")?,
        }),
        Some("fold") => Ok(ProgOp::Fold {
            op: doc
                .get("op")
                .and_then(Json::as_str)
                .and_then(op_from_mnemonic)
                .ok_or("bad fold op")?,
            srcs: doc
                .get("srcs")
                .and_then(Json::as_arr)
                .ok_or("bad fold srcs")?
                .iter()
                .map(|v| v.as_u64().map(|n| n as usize).ok_or("bad fold src".to_string()))
                .collect::<Result<Vec<_>, String>>()?,
            dst: idx("dst")?,
        }),
        Some("synth") => Ok(ProgOp::Synth {
            table: doc
                .get("table")
                .and_then(Json::as_u64_any)
                .ok_or("bad synth table")?,
            inputs: doc
                .get("inputs")
                .and_then(Json::as_arr)
                .ok_or("bad synth inputs")?
                .iter()
                .map(|v| v.as_u64().map(|n| n as usize).ok_or("bad synth input".to_string()))
                .collect::<Result<Vec<_>, String>>()?,
            dst: idx("dst")?,
        }),
        _ => Err("bad op kind".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            seed: 99,
            geometry: GeometryKind::Tiny,
            timing: TimingKind::Ddr3_1600,
            aap_mode: AapMode::Overlapped,
            tie_break: TieBreak::Error,
            fault_tra_rate: None,
            profile_seed: None,
            vectors: vec![
                VectorSpec { bits: 128, group: 0, data_seed: 1 },
                VectorSpec { bits: 128, group: 0, data_seed: 2 },
                VectorSpec { bits: 128, group: 0, data_seed: 3 },
            ],
            ops: vec![
                ProgOp::Bitwise {
                    op: BitwiseOp::And,
                    src1: 0,
                    src2: Some(1),
                    dst: 2,
                },
                ProgOp::Maj3 { a: 0, b: 1, c: 2, dst: 2 },
                ProgOp::Fold { op: BitwiseOp::Or, srcs: vec![0, 1], dst: 2 },
                ProgOp::Synth { table: 0x96, inputs: vec![0, 1, 2], dst: 2 },
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_programs() {
        let p = sample();
        let text = p.to_json().to_string();
        let back = Program::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn json_round_trip_preserves_profile_seed() {
        // Full-width u64 seeds must survive (the writer emits them as
        // decimal strings, beyond f64's integer range).
        let p = Program { profile_seed: Some(u64::MAX - 7), ..sample() };
        let text = p.to_json().to_string();
        let back = Program::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn missing_profile_seed_key_parses_as_none() {
        // Repro documents written before the field existed have no
        // profile_seed key at all; they must still load.
        let mut doc = sample().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.remove("profile_seed");
        }
        let back = Program::from_json(&doc).unwrap();
        assert_eq!(back.profile_seed, None);
    }

    #[test]
    fn validation_rejects_family_mixing_and_bad_arity() {
        let mut p = sample();
        p.vectors[1].group = 7;
        assert!(p.validate().unwrap_err().contains("mixes families"));

        let mut p = sample();
        p.ops[0] = ProgOp::Bitwise { op: BitwiseOp::Not, src1: 0, src2: Some(1), dst: 2 };
        assert!(p.validate().is_err());

        let mut p = sample();
        p.ops[2] = ProgOp::Fold { op: BitwiseOp::Xor, srcs: vec![0, 1], dst: 2 };
        assert!(p.validate().unwrap_err().contains("fold"));

        let mut p = sample();
        p.ops[1] = ProgOp::Maj3 { a: 0, b: 1, c: 9, dst: 2 };
        assert!(p.validate().unwrap_err().contains("missing vector"));
    }

    #[test]
    fn validation_rejects_bad_synth_ops() {
        let mut p = sample();
        p.ops[3] = ProgOp::Synth { table: 0, inputs: vec![], dst: 2 };
        assert!(p.validate().unwrap_err().contains("synth"));

        let mut p = sample();
        p.ops[3] = ProgOp::Synth { table: 0, inputs: vec![0, 1, 2, 0, 1, 2], dst: 2 };
        assert!(p.validate().unwrap_err().contains("1..=5"));

        // Table bits beyond the 2^inputs minterms.
        let mut p = sample();
        p.ops[3] = ProgOp::Synth { table: 0x1_0000, inputs: vec![0, 1], dst: 2 };
        assert!(p.validate().unwrap_err().contains("minterms"));
    }

    #[test]
    fn full_width_synth_tables_round_trip() {
        // A 5-input table uses 32 bits; make sure high bits survive the
        // JSON path (serialized like the u64 seeds).
        let mut p = sample();
        p.ops[3] = ProgOp::Synth {
            table: 0xdead_beef,
            inputs: vec![0, 1, 2, 0, 1],
            dst: 2,
        };
        let text = p.to_json().to_string();
        let back = Program::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn initial_data_is_deterministic_per_seed() {
        let p = sample();
        assert_eq!(p.initial_data(), p.initial_data());
        assert_ne!(p.vectors[0].initial_data(), p.vectors[1].initial_data());
    }
}
