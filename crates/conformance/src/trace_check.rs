//! The DDR trace-invariant checker.
//!
//! Replays a [`CommandTimer`](ambit_dram::CommandTimer) trace through an
//! independent per-bank state machine and reports every sequencing or
//! timing violation. The checker is deliberately *not* built on the timer's
//! own bookkeeping: it re-derives legality from [`TimingParams`] so a bug
//! in the timer's scheduling shows up as a violation instead of being
//! self-certified.
//!
//! Invariants checked:
//!
//! * per-bank command timestamps never regress;
//! * PRECHARGE / READ / WRITE only address a bank with an open row;
//! * at most two ACTIVATEs per open interval (the second is the AAP /
//!   RowClone copy activation; a third means a re-ACTIVATE of a new row
//!   without an intervening PRECHARGE);
//! * an AAP's two activations target different rows (when row tags are
//!   recorded);
//! * ACTIVATE respects tRP after the previous PRECHARGE; the copy
//!   activation respects the mode's overlap window (tRCD for
//!   [`AapMode::Overlapped`], tRAS for [`AapMode::Naive`]);
//! * PRECHARGE respects tRAS, the overlapped-AAP restore extension, and
//!   write recovery (tCL + tWR after the last WRITE);
//! * READ/WRITE respect tRCD and never land in a multi-wordline (TRA) or
//!   two-activation (AAP) interval, where the sense amplifiers hold
//!   computation state rather than a clean row;
//! * column bursts serialize on the shared bus at tCCD granularity, with
//!   the single exception of a linked READ+WRITE pair at the same instant
//!   (the pipelined RowClone-PSM transfer, which occupies one slot). Each
//!   channel has its own data bus, so a checker built with
//!   [`with_banks_per_channel`](TraceChecker::with_banks_per_channel)
//!   applies the rule per channel — bursts on different channels may
//!   legally overlap;
//! * every multi-wordline or two-activation interval is closed by a
//!   PRECHARGE before the trace ends (triple-row state must never be left
//!   exposed).

use ambit_dram::{AapMode, TimingParams, TraceCommand, TraceEntry};

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceViolation {
    /// Index of the offending entry in the checked trace.
    pub index: usize,
    /// Bank the entry addressed.
    pub bank: usize,
    /// Issue time of the offending entry.
    pub at_ps: u64,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The invariant a [`TraceViolation`] broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A bank's trace went backwards in time.
    TimestampRegression {
        /// The bank's previous command time.
        prev_ps: u64,
    },
    /// PRECHARGE addressed a bank with no open row.
    PrechargeWithoutOpenRow,
    /// READ/WRITE addressed a bank with no open row.
    ColumnWithoutOpenRow,
    /// Third ACTIVATE in one open interval — a re-ACTIVATE without
    /// PRECHARGE.
    ReactivateWithoutPrecharge,
    /// An AAP's copy activation re-raised the row already open.
    RedundantCopyActivate {
        /// The duplicated row address.
        row: usize,
    },
    /// ACTIVATE before the previous PRECHARGE's tRP elapsed.
    EarlyActivate {
        /// Earliest legal issue time.
        earliest_ps: u64,
    },
    /// AAP copy activation before the mode's overlap window opened.
    EarlySecondActivate {
        /// Earliest legal issue time.
        earliest_ps: u64,
    },
    /// PRECHARGE before tRAS / restore / write recovery completed.
    EarlyPrecharge {
        /// Earliest legal issue time.
        earliest_ps: u64,
    },
    /// READ/WRITE before tRCD (or the previous burst's tCCD) elapsed on
    /// the bank.
    EarlyColumn {
        /// Earliest legal issue time.
        earliest_ps: u64,
    },
    /// READ/WRITE inside a multi-wordline or two-activation interval.
    ColumnDuringAmbitInterval,
    /// More than a linked READ+WRITE pair on the bus at one instant.
    BusConflict,
    /// Column bursts closer than tCCD on the shared bus.
    CcdViolation {
        /// Earliest legal issue time.
        earliest_ps: u64,
    },
    /// A TRA/AAP interval reached the end of the trace without PRECHARGE.
    UnclosedAmbitInterval,
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace[{}] bank {} @ {} ps: {:?}",
            self.index, self.bank, self.at_ps, self.kind
        )
    }
}

#[derive(Debug, Clone, Default)]
struct BankState {
    open: bool,
    /// `(at_ps, wordlines, row)` of each ACTIVATE in the open interval.
    acts: Vec<(u64, usize, Option<usize>)>,
    /// Whether any ACTIVATE in the interval raised > 1 wordline.
    multi: bool,
    pre_ready_ps: u64,
    act_ready_ps: u64,
    col_ready_ps: u64,
    last_ps: Option<u64>,
    /// Trace index of the interval's last ACTIVATE (for end-of-trace
    /// reporting).
    last_act_index: usize,
}

/// Validates traces against one timing set and AAP mode.
#[derive(Debug, Clone)]
pub struct TraceChecker {
    timing: TimingParams,
    mode: AapMode,
    /// Flat bank indices per channel; `None` treats the whole trace as one
    /// channel (the historical single-bus behavior).
    banks_per_channel: Option<usize>,
}

impl TraceChecker {
    /// A checker for traces produced under `timing` and `mode`, treating
    /// every bank as sharing one data bus.
    pub fn new(timing: TimingParams, mode: AapMode) -> Self {
        TraceChecker { timing, mode, banks_per_channel: None }
    }

    /// Splits the bus-serialization check per channel: trace banks are flat
    /// indices, and each consecutive run of `banks` indices shares one
    /// channel (for a device geometry this is `ranks * banks`). Bursts on
    /// different channels may then overlap without violation; all per-bank
    /// invariants are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn with_banks_per_channel(mut self, banks: usize) -> Self {
        assert!(banks > 0, "banks_per_channel must be nonzero");
        self.banks_per_channel = Some(banks);
        self
    }

    /// Checks every invariant over `trace` and returns all violations, in
    /// trace order (bus violations are appended after per-bank ones).
    pub fn check(&self, trace: &[TraceEntry]) -> Vec<TraceViolation> {
        let mut violations = Vec::new();
        let mut banks: Vec<BankState> = Vec::new();
        let t = &self.timing;

        for (index, entry) in trace.iter().enumerate() {
            if entry.bank >= banks.len() {
                banks.resize(entry.bank + 1, BankState::default());
            }
            let b = &mut banks[entry.bank];
            let mut flag = |kind: ViolationKind| {
                violations.push(TraceViolation {
                    index,
                    bank: entry.bank,
                    at_ps: entry.at_ps,
                    kind,
                });
            };
            if let Some(prev) = b.last_ps {
                if entry.at_ps < prev {
                    flag(ViolationKind::TimestampRegression { prev_ps: prev });
                }
            }
            b.last_ps = Some(entry.at_ps);

            match entry.command {
                TraceCommand::Activate { wordlines, row } => {
                    if !b.open {
                        if entry.at_ps < b.act_ready_ps {
                            flag(ViolationKind::EarlyActivate { earliest_ps: b.act_ready_ps });
                        }
                        b.open = true;
                        b.acts = vec![(entry.at_ps, wordlines, row)];
                        b.multi = wordlines > 1;
                        b.pre_ready_ps = entry.at_ps + t.t_ras_ps;
                        b.col_ready_ps = entry.at_ps + t.t_rcd_ps;
                        b.last_act_index = index;
                    } else if b.acts.len() >= 2 {
                        flag(ViolationKind::ReactivateWithoutPrecharge);
                        b.last_act_index = index;
                    } else {
                        let (first_ps, _, first_row) = b.acts[0];
                        let earliest = match self.mode {
                            AapMode::Naive => first_ps + t.t_ras_ps,
                            AapMode::Overlapped => first_ps + t.t_rcd_ps,
                        };
                        if entry.at_ps < earliest {
                            flag(ViolationKind::EarlySecondActivate { earliest_ps: earliest });
                        }
                        if let (Some(r1), Some(r2)) = (first_row, row) {
                            if r1 == r2 {
                                flag(ViolationKind::RedundantCopyActivate { row: r2 });
                            }
                        }
                        b.pre_ready_ps = match self.mode {
                            AapMode::Naive => b.pre_ready_ps.max(entry.at_ps + t.t_ras_ps),
                            AapMode::Overlapped => b
                                .pre_ready_ps
                                .max(first_ps + t.t_ras_ps + t.t_overlap_extra_ps),
                        };
                        b.col_ready_ps = b.col_ready_ps.max(entry.at_ps + t.t_rcd_ps);
                        b.multi |= wordlines > 1;
                        b.acts.push((entry.at_ps, wordlines, row));
                        b.last_act_index = index;
                    }
                }
                TraceCommand::Precharge => {
                    if !b.open {
                        flag(ViolationKind::PrechargeWithoutOpenRow);
                    } else {
                        if entry.at_ps < b.pre_ready_ps {
                            flag(ViolationKind::EarlyPrecharge { earliest_ps: b.pre_ready_ps });
                        }
                        b.open = false;
                        b.acts.clear();
                        b.multi = false;
                        b.act_ready_ps = entry.at_ps + t.t_rp_ps;
                    }
                }
                TraceCommand::Read | TraceCommand::Write => {
                    if !b.open {
                        flag(ViolationKind::ColumnWithoutOpenRow);
                    } else {
                        if b.multi || b.acts.len() >= 2 {
                            flag(ViolationKind::ColumnDuringAmbitInterval);
                        }
                        if entry.at_ps < b.col_ready_ps {
                            flag(ViolationKind::EarlyColumn { earliest_ps: b.col_ready_ps });
                        }
                        b.col_ready_ps = b.col_ready_ps.max(entry.at_ps + t.t_ccd_ps);
                        if entry.command == TraceCommand::Write {
                            b.pre_ready_ps =
                                b.pre_ready_ps.max(entry.at_ps + t.t_cl_ps + t.t_wr_ps);
                        }
                    }
                }
            }
        }

        for (bank, b) in banks.iter().enumerate() {
            if b.open && (b.multi || b.acts.len() >= 2) {
                violations.push(TraceViolation {
                    index: b.last_act_index,
                    bank,
                    at_ps: b.acts.last().map_or(0, |a| a.0),
                    kind: ViolationKind::UnclosedAmbitInterval,
                });
            }
        }

        violations.extend(self.check_bus(trace));
        violations
    }

    /// The shared-bus tCCD pass: column bursts sorted by time, grouped
    /// into slots, with the linked READ+WRITE pair counting as one slot.
    /// Runs once per channel when a channel width is configured — each
    /// channel's data bus serializes independently.
    fn check_bus(&self, trace: &[TraceEntry]) -> Vec<TraceViolation> {
        let mut channels: Vec<Vec<(usize, &TraceEntry)>> = Vec::new();
        for (index, entry) in trace.iter().enumerate() {
            if !matches!(entry.command, TraceCommand::Read | TraceCommand::Write) {
                continue;
            }
            let channel = self.banks_per_channel.map_or(0, |banks| entry.bank / banks);
            if channel >= channels.len() {
                channels.resize_with(channel + 1, Vec::new);
            }
            channels[channel].push((index, entry));
        }
        let mut violations = Vec::new();
        for mut cols in channels {
            cols.sort_by_key(|(index, e)| (e.at_ps, *index));
            self.check_channel_bus(&cols, &mut violations);
        }
        violations
    }

    /// One channel's slot walk (see [`check_bus`](Self::check_bus)).
    fn check_channel_bus(
        &self,
        cols: &[(usize, &TraceEntry)],
        violations: &mut Vec<TraceViolation>,
    ) {
        let mut prev_slot: Option<u64> = None;
        let mut i = 0;
        while i < cols.len() {
            let slot_ps = cols[i].1.at_ps;
            let mut j = i;
            while j < cols.len() && cols[j].1.at_ps == slot_ps {
                j += 1;
            }
            let group = &cols[i..j];
            // One burst, or one linked READ+WRITE pair, per slot.
            let linked_pair = group.len() == 2
                && group
                    .iter()
                    .any(|(_, e)| e.command == TraceCommand::Read)
                && group
                    .iter()
                    .any(|(_, e)| e.command == TraceCommand::Write);
            if group.len() > 1 && !linked_pair {
                for &(index, e) in &group[1..] {
                    violations.push(TraceViolation {
                        index,
                        bank: e.bank,
                        at_ps: e.at_ps,
                        kind: ViolationKind::BusConflict,
                    });
                }
            }
            if let Some(prev) = prev_slot {
                let earliest = prev + self.timing.t_ccd_ps;
                if slot_ps < earliest {
                    let (index, e) = group[0];
                    violations.push(TraceViolation {
                        index,
                        bank: e.bank,
                        at_ps: e.at_ps,
                        kind: ViolationKind::CcdViolation { earliest_ps: earliest },
                    });
                }
            }
            prev_slot = Some(slot_ps);
            i = j;
        }
    }

    /// [`check`](Self::check), formatted as a single error for test
    /// assertions.
    ///
    /// # Errors
    ///
    /// One line per violation.
    pub fn assert_clean(&self, trace: &[TraceEntry]) -> Result<(), String> {
        let violations = self.check(trace);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(at_ps: u64, bank: usize, command: TraceCommand) -> TraceEntry {
        TraceEntry { at_ps, bank, command }
    }

    fn act(at_ps: u64, bank: usize, wordlines: usize, row: Option<usize>) -> TraceEntry {
        e(at_ps, bank, TraceCommand::Activate { wordlines, row })
    }

    fn checker(mode: AapMode) -> TraceChecker {
        TraceChecker::new(TimingParams::ddr3_1600(), mode)
    }

    fn kinds(violations: &[TraceViolation]) -> Vec<&ViolationKind> {
        violations.iter().map(|v| &v.kind).collect()
    }

    #[test]
    fn clean_overlapped_aap_passes() {
        // TRA activate, copy activate at +tRCD, precharge at
        // tRAS + overlap extra: the canonical overlapped AAP.
        let trace = [
            act(0, 0, 3, Some(0)),
            act(10_000, 0, 1, Some(20)),
            e(39_000, 0, TraceCommand::Precharge),
        ];
        checker(AapMode::Overlapped).assert_clean(&trace).unwrap();
    }

    #[test]
    fn clean_naive_aap_passes() {
        let trace = [
            act(0, 0, 3, Some(0)),
            act(35_000, 0, 1, Some(20)),
            e(70_000, 0, TraceCommand::Precharge),
        ];
        checker(AapMode::Naive).assert_clean(&trace).unwrap();
    }

    #[test]
    fn clean_read_sequence_passes() {
        let trace = [
            act(0, 0, 1, Some(18)),
            e(10_000, 0, TraceCommand::Read),
            e(15_000, 0, TraceCommand::Read),
            e(40_000, 0, TraceCommand::Precharge),
        ];
        checker(AapMode::Overlapped).assert_clean(&trace).unwrap();
    }

    #[test]
    fn timestamp_regression_fires() {
        let trace = [act(10_000, 0, 1, None), e(50_000, 0, TraceCommand::Precharge), act(5_000, 0, 1, None)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::TimestampRegression { .. })));
    }

    #[test]
    fn third_activate_fires() {
        let trace = [
            act(0, 0, 1, None),
            act(35_000, 0, 1, None),
            act(80_000, 0, 1, None),
        ];
        assert!(kinds(&checker(AapMode::Naive).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::ReactivateWithoutPrecharge)));
    }

    #[test]
    fn redundant_copy_activate_fires() {
        let trace = [
            act(0, 0, 1, Some(5)),
            act(10_000, 0, 1, Some(5)),
            e(39_000, 0, TraceCommand::Precharge),
        ];
        assert!(kinds(&checker(AapMode::Overlapped).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::RedundantCopyActivate { row: 5 })));
    }

    #[test]
    fn early_precharge_and_activate_fire() {
        let trace = [
            act(0, 0, 1, None),
            e(20_000, 0, TraceCommand::Precharge), // < tRAS = 35 ns
            act(25_000, 0, 1, None),               // < PRE + tRP = 30 ns
        ];
        let got = checker(AapMode::Overlapped).check(&trace);
        assert!(kinds(&got)
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlyPrecharge { earliest_ps: 35_000 })));
        assert!(kinds(&got)
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlyActivate { earliest_ps: 30_000 })));
    }

    #[test]
    fn early_second_activate_fires_per_mode() {
        let trace = [act(0, 0, 1, None), act(5_000, 0, 1, None)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlySecondActivate { earliest_ps: 10_000 })));
        let trace = [act(0, 0, 1, None), act(20_000, 0, 1, None)];
        assert!(kinds(&checker(AapMode::Naive).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlySecondActivate { earliest_ps: 35_000 })));
        // The same gap is legal under Overlapped.
        assert!(!kinds(&checker(AapMode::Overlapped).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlySecondActivate { .. })));
    }

    #[test]
    fn write_recovery_extends_precharge_window() {
        let trace = [
            act(0, 0, 1, None),
            e(30_000, 0, TraceCommand::Write),
            // tRAS satisfied, but WRITE@30 ns + tCL + tWR = 55 ns is not.
            e(40_000, 0, TraceCommand::Precharge),
        ];
        assert!(kinds(&checker(AapMode::Overlapped).check(&trace))
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlyPrecharge { earliest_ps: 55_000 })));
    }

    #[test]
    fn column_rules_fire() {
        let closed = [e(0, 0, TraceCommand::Read)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&closed))
            .iter()
            .any(|k| matches!(k, ViolationKind::ColumnWithoutOpenRow)));

        let orphan_pre = [e(0, 0, TraceCommand::Precharge)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&orphan_pre))
            .iter()
            .any(|k| matches!(k, ViolationKind::PrechargeWithoutOpenRow)));

        let early = [act(0, 0, 1, None), e(5_000, 0, TraceCommand::Read)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&early))
            .iter()
            .any(|k| matches!(k, ViolationKind::EarlyColumn { earliest_ps: 10_000 })));

        let tra_read = [act(0, 0, 3, None), e(20_000, 0, TraceCommand::Read)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&tra_read))
            .iter()
            .any(|k| matches!(k, ViolationKind::ColumnDuringAmbitInterval)));
    }

    #[test]
    fn bus_rules_fire_but_linked_pairs_pass() {
        let base = |cmds: [TraceEntry; 2]| {
            let mut t = vec![act(0, 0, 1, None), act(0, 1, 1, None)];
            t.extend(cmds);
            t
        };
        // Linked READ+WRITE at one instant: legal (one slot).
        let linked = base([
            e(20_000, 0, TraceCommand::Read),
            e(20_000, 1, TraceCommand::Write),
        ]);
        assert!(!kinds(&checker(AapMode::Overlapped).check(&linked))
            .iter()
            .any(|k| matches!(k, ViolationKind::BusConflict | ViolationKind::CcdViolation { .. })));

        // Two READs at one instant: bus conflict.
        let conflict = base([
            e(20_000, 0, TraceCommand::Read),
            e(20_000, 1, TraceCommand::Read),
        ]);
        assert!(kinds(&checker(AapMode::Overlapped).check(&conflict))
            .iter()
            .any(|k| matches!(k, ViolationKind::BusConflict)));

        // Bursts closer than tCCD (5 ns at DDR3-1600): violation.
        let close = base([
            e(20_000, 0, TraceCommand::Read),
            e(22_000, 1, TraceCommand::Read),
        ]);
        assert!(kinds(&checker(AapMode::Overlapped).check(&close))
            .iter()
            .any(|k| matches!(k, ViolationKind::CcdViolation { earliest_ps: 25_000 })));
    }

    #[test]
    fn per_channel_bus_permits_cross_channel_overlap() {
        // Banks 0-1 are channel 0, banks 2-3 channel 1 (2 banks/channel).
        // Same-instant READs and sub-tCCD spacing across channels are
        // legal — each channel has its own data bus.
        let split = checker(AapMode::Overlapped).with_banks_per_channel(2);

        // Same-instant READs on different channels.
        let same_instant = [
            act(0, 0, 1, None),
            act(0, 2, 1, None),
            e(20_000, 0, TraceCommand::Read),
            e(20_000, 2, TraceCommand::Read),
        ];
        assert!(!kinds(&split.check(&same_instant))
            .iter()
            .any(|k| matches!(k, ViolationKind::BusConflict | ViolationKind::CcdViolation { .. })));
        // The single-bus checker flags the same trace, proving the split
        // is what legalized it.
        assert!(kinds(&checker(AapMode::Overlapped).check(&same_instant))
            .iter()
            .any(|k| matches!(k, ViolationKind::BusConflict)));

        // Sub-tCCD spacing (5 ns at DDR3-1600) across channels.
        let close = [
            act(0, 0, 1, None),
            act(0, 2, 1, None),
            e(20_000, 0, TraceCommand::Read),
            e(22_000, 2, TraceCommand::Read),
        ];
        assert!(!kinds(&split.check(&close))
            .iter()
            .any(|k| matches!(k, ViolationKind::BusConflict | ViolationKind::CcdViolation { .. })));
        assert!(kinds(&checker(AapMode::Overlapped).check(&close))
            .iter()
            .any(|k| matches!(k, ViolationKind::CcdViolation { earliest_ps: 25_000 })));

        // Within one channel the rules still bite.
        let within = [
            act(0, 2, 1, None),
            act(0, 3, 1, None),
            e(20_000, 2, TraceCommand::Read),
            e(22_000, 3, TraceCommand::Read),
        ];
        assert!(kinds(&split.check(&within))
            .iter()
            .any(|k| matches!(k, ViolationKind::CcdViolation { earliest_ps: 25_000 })));
    }

    #[test]
    fn unclosed_ambit_interval_fires() {
        let tra = [act(0, 0, 2, None)];
        assert!(kinds(&checker(AapMode::Overlapped).check(&tra))
            .iter()
            .any(|k| matches!(k, ViolationKind::UnclosedAmbitInterval)));

        // A plain open row at end-of-trace is the normal open-row policy.
        let open_row = [act(0, 0, 1, None)];
        checker(AapMode::Overlapped).assert_clean(&open_row).unwrap();
    }
}
