//! The pure-CPU golden model.
//!
//! Evaluates a [`Program`] over plain `Vec<bool>` state, one bit at a
//! time, using [`BitwiseOp::apply_words`] as the single source of truth for
//! per-op semantics (the same primitive the driver's scalar reference
//! uses). Every execution path in the oracle is compared against this.

use ambit_core::BitwiseOp;

use crate::program::{ProgOp, Program};

fn bitwise(op: BitwiseOp, a: &[bool], b: Option<&[bool]>) -> Vec<bool> {
    (0..a.len())
        .map(|i| {
            let aw = u64::from(a[i]);
            let bw = u64::from(b.is_some_and(|b| b[i]));
            op.apply_words(aw, bw) & 1 == 1
        })
        .collect()
}

/// Runs `program` on the CPU and returns the final contents of every
/// vector, in declaration order.
///
/// Ops execute strictly in program order; aliasing (destination also a
/// source) reads the pre-op value, matching the driver, which stages
/// sources into the B-group before overwriting the destination.
pub fn run(program: &Program) -> Vec<Vec<bool>> {
    let mut state = program.initial_data();
    for op in &program.ops {
        let (dst, value) = match op {
            ProgOp::Bitwise { op, src1, src2, dst } => (
                *dst,
                bitwise(*op, &state[*src1], src2.map(|s| state[s].as_slice())),
            ),
            ProgOp::Maj3 { a, b, c, dst } => {
                let (a, b, c) = (&state[*a], &state[*b], &state[*c]);
                (
                    *dst,
                    (0..a.len())
                        .map(|i| {
                            u8::from(a[i]) + u8::from(b[i]) + u8::from(c[i]) >= 2
                        })
                        .collect(),
                )
            }
            ProgOp::Fold { op, srcs, dst } => {
                let mut acc = state[srcs[0]].clone();
                for &s in &srcs[1..] {
                    acc = bitwise(*op, &acc, Some(&state[s]));
                }
                (*dst, acc)
            }
            ProgOp::Synth { table, inputs, dst } => {
                let bits = state[inputs[0]].len();
                (
                    *dst,
                    (0..bits)
                        .map(|i| {
                            let idx: u64 = inputs
                                .iter()
                                .enumerate()
                                .map(|(j, &v)| u64::from(state[v][i]) << j)
                                .sum();
                            table >> idx & 1 == 1
                        })
                        .collect(),
                )
            }
        };
        state[dst] = value;
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GeometryKind, TimingKind, VectorSpec};
    use ambit_dram::{AapMode, TieBreak};

    fn program(ops: Vec<ProgOp>) -> Program {
        Program {
            seed: 0,
            geometry: GeometryKind::Tiny,
            timing: TimingKind::Ddr3_1600,
            aap_mode: AapMode::Overlapped,
            tie_break: TieBreak::Error,
            fault_tra_rate: None,
            profile_seed: None,
            vectors: vec![
                VectorSpec { bits: 8, group: 0, data_seed: 10 },
                VectorSpec { bits: 8, group: 0, data_seed: 11 },
                VectorSpec { bits: 8, group: 0, data_seed: 12 },
            ],
            ops,
        }
    }

    #[test]
    fn bitwise_ops_match_manual_truth_tables() {
        let p = program(vec![ProgOp::Bitwise {
            op: BitwiseOp::Nand,
            src1: 0,
            src2: Some(1),
            dst: 2,
        }]);
        let init = p.initial_data();
        let out = run(&p);
        for i in 0..8 {
            assert_eq!(out[2][i], !(init[0][i] && init[1][i]));
        }
        // Untouched vectors keep their initial data.
        assert_eq!(out[0], init[0]);
        assert_eq!(out[1], init[1]);
    }

    #[test]
    fn maj3_and_fold_compose_in_program_order() {
        let p = program(vec![
            ProgOp::Maj3 { a: 0, b: 1, c: 2, dst: 2 },
            ProgOp::Fold { op: BitwiseOp::Or, srcs: vec![0, 1, 2], dst: 0 },
        ]);
        let init = p.initial_data();
        let out = run(&p);
        for i in 0..8 {
            let maj = [init[0][i], init[1][i], init[2][i]]
                .iter()
                .filter(|&&b| b)
                .count()
                >= 2;
            assert_eq!(out[2][i], maj);
            assert_eq!(out[0][i], init[0][i] || init[1][i] || maj);
        }
    }

    #[test]
    fn synth_ops_evaluate_their_truth_table() {
        // table 0xE8 = maj(a, b, c) with input j = bit j.
        let p = program(vec![ProgOp::Synth {
            table: 0xE8,
            inputs: vec![0, 1, 2],
            dst: 2,
        }]);
        let init = p.initial_data();
        let out = run(&p);
        for i in 0..8 {
            let maj = [init[0][i], init[1][i], init[2][i]]
                .iter()
                .filter(|&&b| b)
                .count()
                >= 2;
            assert_eq!(out[2][i], maj);
        }
    }

    #[test]
    fn synth_ops_support_repeated_inputs_and_aliasing() {
        // f(a, a) with table 0b0110 (xor) must clear the destination,
        // even when the destination aliases the input.
        let p = program(vec![ProgOp::Synth {
            table: 0b0110,
            inputs: vec![0, 0],
            dst: 0,
        }]);
        let out = run(&p);
        assert!(out[0].iter().all(|&b| !b), "x ^ x must clear the vector");
    }

    #[test]
    fn aliased_destination_reads_pre_op_value() {
        let p = program(vec![ProgOp::Bitwise {
            op: BitwiseOp::Xor,
            src1: 0,
            src2: Some(0),
            dst: 0,
        }]);
        let out = run(&p);
        assert!(out[0].iter().all(|&b| !b), "x ^ x must clear the vector");
    }
}
