//! The seeded program generator.
//!
//! `generate(seed, &cfg)` deterministically expands a 64-bit seed into a
//! valid [`Program`]: a random environment (timing set, AAP mode, tie-break
//! policy), a random allocation plan partitioned into co-location
//! *families* (vectors sharing a bit length and a driver allocation group —
//! the only operand combinations the driver accepts), and a random DAG of
//! bulk operations over those families. A slice of the seed space is
//! fault-armed: those programs get a TRA fault rate and are restricted to
//! the plain bitwise ops the resilient executor exposes.

use ambit_core::BitwiseOp;
use ambit_dram::{AapMode, TieBreak};

use crate::program::{GeometryKind, ProgOp, Program, TimingKind, VectorSpec};
use crate::refrng::ReferenceRng;

/// Knobs bounding the generated programs.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of co-location families (inclusive range, each ≥ 1).
    pub families: (usize, usize),
    /// Vectors per family (inclusive range; ≥ 2 so binary ops are
    /// expressible).
    pub vectors_per_family: (usize, usize),
    /// Vector length bound in *rows* of the tiny geometry (lengths are
    /// drawn in bits, so odd tails below a row boundary are common).
    pub max_rows_per_vector: usize,
    /// Operation count (inclusive range, each ≥ 1).
    pub ops: (usize, usize),
    /// Probability that a program is fault-armed (0 disables arming;
    /// fault-armed programs are all-bitwise and single-family so the
    /// resilient executor can run them).
    pub fault_chance: f64,
    /// Probability that a program is profile-armed (0 disables): it gets a
    /// random device-characterization seed, and the oracle's resilient
    /// path regenerates that [`ChipProfile`](ambit_circuit::ChipProfile),
    /// installs variation-aware placement, and arms the derived fault
    /// campaign. Profile-armed programs share the fault-armed shape
    /// restrictions (all-bitwise, single-family) and never also carry a
    /// uniform TRA fault rate.
    pub profile_chance: f64,
    /// Probability that a fault-free program targets the two-channel
    /// [`tiny_dual_channel`](ambit_dram::DramGeometry::tiny_dual_channel)
    /// geometry instead of the single-channel tiny one (0 disables). The
    /// draw is gated on the knob being nonzero, so existing configurations
    /// keep their exact draw streams. Armed programs stay single-channel:
    /// the knob exists to fuzz the channel-sharded threaded batch path,
    /// which armed programs never take.
    pub multi_channel_chance: f64,
    /// Probability that a fault-free program is synth-armed (0 disables):
    /// a slice of its ops become random-truth-table [`ProgOp::Synth`] ops,
    /// compiled to MAJ/NOT microprograms by the oracle at execution time.
    /// Gated like `multi_channel_chance`, so existing configurations keep
    /// their exact draw streams. Synth-armed programs get tighter shape
    /// bounds: each synthesized op needs a scratch-row pool co-located
    /// with its family, and the tiny geometry only has 14 data rows per
    /// subarray to hold vectors and scratch together.
    pub synth_chance: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            families: (1, 3),
            vectors_per_family: (2, 4),
            max_rows_per_vector: 3,
            ops: (1, 12),
            fault_chance: 0.0,
            profile_chance: 0.0,
            multi_channel_chance: 0.0,
            synth_chance: 0.0,
        }
    }
}

impl GeneratorConfig {
    /// The default configuration with fault arming enabled for roughly one
    /// program in four.
    pub fn with_faults() -> Self {
        GeneratorConfig { fault_chance: 0.25, ..GeneratorConfig::default() }
    }

    /// The default configuration with profile arming enabled for roughly
    /// one program in four.
    pub fn with_profiles() -> Self {
        GeneratorConfig { profile_chance: 0.25, ..GeneratorConfig::default() }
    }

    /// The default configuration with roughly one fault-free program in
    /// four placed on the two-channel geometry.
    pub fn with_multi_channel() -> Self {
        GeneratorConfig { multi_channel_chance: 0.25, ..GeneratorConfig::default() }
    }

    /// The default configuration with roughly one fault-free program in
    /// four carrying synthesized-function ops.
    pub fn with_synth() -> Self {
        GeneratorConfig { synth_chance: 0.25, ..GeneratorConfig::default() }
    }
}

/// All ten bulk ops (the seven Figure 9 ops plus copy and the two inits).
const BITWISE_OPS: [BitwiseOp; 10] = [
    BitwiseOp::Not,
    BitwiseOp::And,
    BitwiseOp::Or,
    BitwiseOp::Nand,
    BitwiseOp::Nor,
    BitwiseOp::Xor,
    BitwiseOp::Xnor,
    BitwiseOp::Copy,
    BitwiseOp::InitZero,
    BitwiseOp::InitOne,
];

fn range(rng: &mut ReferenceRng, (lo, hi): (usize, usize)) -> usize {
    debug_assert!(lo >= 1 && hi >= lo);
    lo + rng.below((hi - lo + 1) as u64) as usize
}

/// Deterministically expands `seed` into a valid program.
///
/// The same `(seed, config)` pair always yields the same program, across
/// runs and machines; the program always passes [`Program::validate`].
pub fn generate(seed: u64, cfg: &GeneratorConfig) -> Program {
    let mut rng = ReferenceRng::with_seed(seed);

    let fault_armed = cfg.fault_chance > 0.0 && rng.chance(cfg.fault_chance);
    // The profile draw is gated on the knob being nonzero so existing
    // fault-only configurations keep their exact draw streams.
    let profile_armed = !fault_armed && cfg.profile_chance > 0.0 && rng.chance(cfg.profile_chance);
    let armed = fault_armed || profile_armed;
    // Same gating for the geometry draw. Armed programs stay on the
    // single-channel tiny geometry (they run the serial resilient path,
    // which the knob is not aimed at). Both tiny variants share a row
    // width, so the choice does not perturb the length draws below.
    let multi_channel =
        !armed && cfg.multi_channel_chance > 0.0 && rng.chance(cfg.multi_channel_chance);
    // Synth arming uses the same gating pattern, and composes freely with
    // the multi-channel draw (synthesized batches through the
    // channel-sharded threaded path are exactly what we want fuzzed).
    let synth_armed = !armed && cfg.synth_chance > 0.0 && rng.chance(cfg.synth_chance);
    let geometry = if multi_channel { GeometryKind::TinyDual } else { GeometryKind::Tiny };
    let row_bits = geometry.geometry().row_bytes * 8;
    // Fault- and profile-armed programs run through the TMR-replicated
    // resilient executor (3× the footprint plus retry scratch), so keep
    // them small. Synth-armed programs carry per-family scratch pools for
    // their compiled microprograms, so they also get tighter bounds: the
    // tiny subarray's 14 data rows must hold operands and scratch at once.
    let n_families = if armed {
        1
    } else if synth_armed {
        range(&mut rng, (cfg.families.0, cfg.families.1.min(2)))
    } else {
        range(&mut rng, cfg.families)
    };
    let max_rows = if armed || synth_armed {
        cfg.max_rows_per_vector.min(2)
    } else {
        cfg.max_rows_per_vector
    };

    let mut vectors = Vec::new();
    let mut families: Vec<Vec<usize>> = Vec::new();
    for family in 0..n_families {
        let n_vectors = if armed || synth_armed {
            range(&mut rng, (2, cfg.vectors_per_family.1.min(3)))
        } else {
            range(&mut rng, cfg.vectors_per_family)
        };
        // Lengths in bits, biased to land off row boundaries so tail-bit
        // handling stays under test.
        let bits = 1 + rng.below((max_rows * row_bits) as u64) as usize;
        let members = (0..n_vectors)
            .map(|_| {
                vectors.push(VectorSpec {
                    bits,
                    group: family as u32,
                    data_seed: rng.next(),
                });
                vectors.len() - 1
            })
            .collect();
        families.push(members);
    }

    let n_ops = if armed {
        range(&mut rng, (1, 4))
    } else if synth_armed {
        range(&mut rng, (cfg.ops.0, cfg.ops.1.min(8)))
    } else {
        range(&mut rng, cfg.ops)
    };
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let family = &families[rng.below(families.len() as u64) as usize];
        let pick = |rng: &mut ReferenceRng| family[rng.below(family.len() as u64) as usize];
        // Synth-armed programs convert a slice of their ops into random
        // truth tables; the draw is gated on arming so un-armed programs
        // keep their exact op streams.
        if synth_armed && rng.chance(0.35) {
            let n_inputs = 1 + rng.below(3) as usize;
            let table = rng.below(1 << (1u64 << n_inputs));
            let inputs = (0..n_inputs).map(|_| pick(&mut rng)).collect();
            ops.push(ProgOp::Synth { table, inputs, dst: pick(&mut rng) });
            continue;
        }
        let kind = rng.below(100);
        let op = if armed || kind < 70 {
            let op = *rng.pick(&BITWISE_OPS);
            let src1 = pick(&mut rng);
            let src2 = (op.source_count() == 2).then(|| pick(&mut rng));
            ProgOp::Bitwise { op, src1, src2, dst: pick(&mut rng) }
        } else if kind < 85 {
            ProgOp::Maj3 {
                a: pick(&mut rng),
                b: pick(&mut rng),
                c: pick(&mut rng),
                dst: pick(&mut rng),
            }
        } else {
            let op = if rng.below(2) == 0 { BitwiseOp::And } else { BitwiseOp::Or };
            let srcs = (0..range(&mut rng, (2, 4))).map(|_| pick(&mut rng)).collect();
            ProgOp::Fold { op, srcs, dst: pick(&mut rng) }
        };
        ops.push(op);
    }

    let program = Program {
        seed,
        geometry,
        timing: *rng.pick(&TimingKind::ALL),
        aap_mode: if rng.below(2) == 0 { AapMode::Naive } else { AapMode::Overlapped },
        tie_break: *rng.pick(&[TieBreak::Error, TieBreak::Zero, TieBreak::One, TieBreak::Random]),
        fault_tra_rate: fault_armed.then(|| 0.001 * (1 + rng.below(5)) as f64),
        profile_seed: profile_armed.then(|| rng.next()),
        vectors,
        ops,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::with_faults();
        for seed in 1..50 {
            assert_eq!(generate(seed, &cfg), generate(seed, &cfg));
        }
    }

    #[test]
    fn generated_programs_validate() {
        let cfg = GeneratorConfig::with_faults();
        for seed in 1..500 {
            let p = generate(seed, &cfg);
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn seed_space_covers_all_shapes() {
        let cfg = GeneratorConfig::with_faults();
        let programs: Vec<Program> = (1..400).map(|s| generate(s, &cfg)).collect();
        let any = |f: &dyn Fn(&Program) -> bool| programs.iter().any(f);
        assert!(any(&|p| p.fault_tra_rate.is_some()));
        assert!(any(&|p| p.fault_tra_rate.is_none()));
        assert!(any(&|p| p.ops.iter().any(|o| matches!(o, ProgOp::Maj3 { .. }))));
        assert!(any(&|p| p.ops.iter().any(|o| matches!(o, ProgOp::Fold { .. }))));
        assert!(any(&|p| p.aap_mode == AapMode::Naive));
        assert!(any(&|p| p.timing == TimingKind::Ddr4_2400));
        assert!(any(&|p| p.vectors[0].bits % (p.geometry.geometry().row_bytes * 8) != 0));
        assert!(any(&|p| p.vectors.len() > 4));
        // Fault-armed programs stay resilient-compatible.
        assert!(programs
            .iter()
            .filter(|p| p.fault_tra_rate.is_some())
            .all(Program::resilient_compatible));
        // The fault-only configuration never arms profiles, so its draw
        // streams are untouched by the profile knob.
        assert!(programs.iter().all(|p| p.profile_seed.is_none()));
        // ... and never draws the multi-channel geometry.
        assert!(programs.iter().all(|p| p.geometry == GeometryKind::Tiny));
    }

    #[test]
    fn multi_channel_knob_selects_dual_channel_and_skips_armed_programs() {
        let cfg = GeneratorConfig {
            fault_chance: 0.25,
            multi_channel_chance: 0.5,
            ..GeneratorConfig::default()
        };
        let programs: Vec<Program> = (1..300).map(|s| generate(s, &cfg)).collect();
        for (seed, p) in (1..300u64).zip(&programs) {
            assert_eq!(p, &generate(seed, &cfg), "seed {seed} not deterministic");
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        let dual: Vec<&Program> =
            programs.iter().filter(|p| p.geometry == GeometryKind::TinyDual).collect();
        assert!(!dual.is_empty(), "multi_channel_chance 0.5 drew nothing in 300 seeds");
        assert!(dual.len() < programs.len());
        // Armed programs stay on the single-channel geometry.
        assert!(dual.iter().all(|p| p.fault_tra_rate.is_none() && p.profile_seed.is_none()));
        // The dual-channel name round-trips through the repro format.
        assert_eq!(GeometryKind::from_name("tiny2ch"), Some(GeometryKind::TinyDual));
    }

    #[test]
    fn synth_knob_emits_synth_ops_and_preserves_other_streams() {
        let cfg = GeneratorConfig::with_synth();
        let programs: Vec<Program> = (1..300).map(|s| generate(s, &cfg)).collect();
        for (seed, p) in (1..300u64).zip(&programs) {
            assert_eq!(p, &generate(seed, &cfg), "seed {seed} not deterministic");
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        let synth: Vec<&Program> = programs
            .iter()
            .filter(|p| p.ops.iter().any(|o| matches!(o, ProgOp::Synth { .. })))
            .collect();
        assert!(!synth.is_empty(), "synth_chance 0.25 emitted nothing in 300 seeds");
        assert!(synth.len() < programs.len());
        // Synth ops never land in armed programs (they cannot run the
        // resilient-only path).
        for p in &synth {
            assert!(p.fault_tra_rate.is_none() && p.profile_seed.is_none());
        }
        // The input-arity and table spaces both get explored.
        let arities: std::collections::HashSet<usize> = synth
            .iter()
            .flat_map(|p| p.ops.iter())
            .filter_map(|o| match o {
                ProgOp::Synth { inputs, .. } => Some(inputs.len()),
                _ => None,
            })
            .collect();
        assert!(arities.len() >= 2, "only arities {arities:?} drawn");
        // A zero knob takes no draws at all: the default configuration
        // emits no synth ops and its programs keep the pre-knob shapes
        // (the gating idiom shared with multi_channel_chance).
        let plain: Vec<Program> =
            (1..100).map(|s| generate(s, &GeneratorConfig::default())).collect();
        assert!(plain
            .iter()
            .all(|p| !p.ops.iter().any(|o| matches!(o, ProgOp::Synth { .. }))));
    }

    #[test]
    fn synth_and_multi_channel_knobs_compose() {
        let cfg = GeneratorConfig {
            synth_chance: 0.5,
            multi_channel_chance: 0.5,
            ..GeneratorConfig::default()
        };
        let programs: Vec<Program> = (1..400).map(|s| generate(s, &cfg)).collect();
        // Some dual-channel programs carry synth ops: the channel-sharded
        // threaded batch path executes compiled microprograms.
        assert!(programs.iter().any(|p| {
            p.geometry == GeometryKind::TinyDual
                && p.ops.iter().any(|o| matches!(o, ProgOp::Synth { .. }))
        }));
    }

    #[test]
    fn profile_arming_is_deterministic_exclusive_and_resilient_compatible() {
        let cfg = GeneratorConfig::with_profiles();
        let programs: Vec<Program> = (1..200).map(|s| generate(s, &cfg)).collect();
        for (seed, p) in (1..200u64).zip(&programs) {
            assert_eq!(p, &generate(seed, &cfg), "seed {seed} not deterministic");
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        let armed: Vec<&Program> =
            programs.iter().filter(|p| p.profile_seed.is_some()).collect();
        assert!(!armed.is_empty(), "profile_chance 0.25 armed nothing in 200 seeds");
        assert!(armed.len() < programs.len());
        for p in &armed {
            // Profile arming is exclusive with uniform fault arming and
            // keeps the resilient-only shape restrictions.
            assert!(p.fault_tra_rate.is_none());
            assert!(p.resilient_compatible());
            assert!(p.vectors.iter().all(|v| v.group == 0));
        }
    }
}
