//! The reproduction's documented reference RNG: xorshift64\* from a fixed
//! seed.
//!
//! This is the exact generator the fault-injection model draws from (one
//! draw per bitline per fault-armed multi-row activation), reimplemented
//! independently of `ambit-dram` so any change to the draw stream's shape or
//! order fails the replay tests that pin it. It doubles as the conformance
//! fuzzer's program generator RNG: deterministic, seedable, dependency-free.

/// The model's fixed default seed (`Subarray`'s fault RNG starts here).
pub const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// xorshift64\* with the multiplier from Vigna's reference implementation.
///
/// # Examples
///
/// ```
/// use ambit_conformance::ReferenceRng;
///
/// let mut a = ReferenceRng::new();
/// let mut b = ReferenceRng::new();
/// assert_eq!(a.next(), b.next()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceRng(u64);

impl ReferenceRng {
    /// The generator at the model's documented fixed seed — bit-for-bit the
    /// stream `Subarray`'s fault arming consumes.
    pub fn new() -> Self {
        ReferenceRng(DEFAULT_SEED)
    }

    /// A generator seeded for fuzzing. A zero seed (xorshift's absorbing
    /// state) falls back to the default seed.
    pub fn with_seed(seed: u64) -> Self {
        ReferenceRng(if seed == 0 { DEFAULT_SEED } else { seed })
    }

    /// The next 64-bit draw.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A draw uniform in `0..bound` (`bound` must be nonzero; modulo bias
    /// is irrelevant at test scales).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next() % bound
    }

    /// `true` with probability `p` (clamped to `[0, 1]`), matching the
    /// model's threshold comparison: `draw < p * u64::MAX`.
    pub fn chance(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        self.next() < threshold
    }

    /// A deterministic bit pattern of `bits` booleans.
    pub fn bits(&mut self, bits: usize) -> Vec<bool> {
        (0..bits).map(|_| self.next() & 1 == 1).collect()
    }

    /// Picks one element of a slice (panics on an empty slice).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

impl Default for ReferenceRng {
    fn default() -> Self {
        ReferenceRng::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_stream_is_pinned() {
        // First three draws from the documented seed — changing the
        // algorithm or seed breaks fault-campaign replay compatibility.
        let mut rng = ReferenceRng::new();
        let first = [rng.next(), rng.next(), rng.next()];
        let mut again = ReferenceRng::with_seed(DEFAULT_SEED);
        assert_eq!(first, [again.next(), again.next(), again.next()]);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn zero_seed_is_not_absorbing() {
        let mut rng = ReferenceRng::with_seed(0);
        assert_ne!(rng.next(), 0);
        assert_eq!(ReferenceRng::with_seed(0), ReferenceRng::new());
    }

    #[test]
    fn helpers_are_in_range() {
        let mut rng = ReferenceRng::with_seed(7);
        for _ in 0..100 {
            assert!(rng.below(13) < 13);
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert_eq!(rng.bits(17).len(), 17);
    }
}
