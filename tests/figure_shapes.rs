//! Fast shape checks for every reproduced table/figure — the acceptance
//! criteria recorded in DESIGN.md, runnable as part of the normal test
//! suite (the full-scale numbers come from the `ambit-bench` binaries).

use ambit_repro::apps::bitmap_index::{run_bitmap_index, BitmapIndexWorkload};
use ambit_repro::apps::bitweaving::{run_bitweaving, BitWeavingWorkload};
use ambit_repro::apps::{run_setop, SetOperation, SetWorkload};
use ambit_repro::circuit::{run_monte_carlo, worst_case_margin, CircuitParams};
use ambit_repro::core::{AmbitConfig, AmbitMemory, BitwiseOp};
use ambit_repro::dram::EnergyModel;
use ambit_repro::sys::machines::{AmbitMachine, BandwidthMachine, BitwiseMachine};
use ambit_repro::sys::SystemConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn figure9_machine_ordering_and_headline_ratios() {
    let ambit = AmbitMachine::module().mean_throughput_gops();
    let ambit3d = AmbitMachine::three_d().mean_throughput_gops();
    let sky = BandwidthMachine::skylake().mean_throughput_gops();
    let gpu = BandwidthMachine::gtx745().mean_throughput_gops();
    let hmc = BandwidthMachine::hmc2().mean_throughput_gops();
    assert!(sky < gpu && gpu < hmc && hmc < ambit && ambit < ambit3d);
    // Paper: 44.9x, 32.0x, 2.4x, 9.7x.
    assert!((ambit / sky - 44.9).abs() < 6.0);
    assert!((ambit / gpu - 32.0).abs() < 4.0);
    assert!((ambit / hmc - 2.4).abs() < 0.6);
    assert!((ambit3d / hmc - 9.7).abs() < 1.5);
}

#[test]
fn table2_shape() {
    let params = CircuitParams::ddr3_55nm();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let r5 = run_monte_carlo(&params, 0.05, 20_000, &mut rng);
    let r15 = run_monte_carlo(&params, 0.15, 20_000, &mut rng);
    let r25 = run_monte_carlo(&params, 0.25, 20_000, &mut rng);
    assert_eq!(r5.failures, 0, "paper: 0.00% at ±5%");
    assert!(r15.failure_percent() > 1.0 && r15.failure_percent() < 15.0);
    assert!(r25.failure_percent() > r15.failure_percent());
    let margin = worst_case_margin(&params);
    assert!((0.05..=0.09).contains(&margin), "paper: ±6%, got {margin}");
}

#[test]
fn table3_all_cells_within_10_percent() {
    let model = EnergyModel::ddr3_1333();
    // DDR3 column.
    assert!((model.conventional_nj_per_kb(2) - 93.7).abs() / 93.7 < 0.10);
    assert!((model.conventional_nj_per_kb(3) - 137.9).abs() / 137.9 < 0.10);
    // Ambit column, from program structure (AAP/AP × wordlines).
    let nj_per_kb = |aaps: &[(usize, usize)], aps: &[usize]| -> f64 {
        let mut total = 0.0;
        for &(w1, w2) in aaps {
            total += model.activate_nj(w1) + model.activate_nj(w2) + model.precharge_nj();
        }
        for &w in aps {
            total += model.activate_nj(w) + model.precharge_nj();
        }
        total / 8.0
    };
    let not = nj_per_kb(&[(1, 1), (1, 1)], &[]);
    let and = nj_per_kb(&[(1, 1), (1, 1), (1, 1), (3, 1)], &[]);
    let nand = nj_per_kb(&[(1, 1), (1, 1), (1, 1), (3, 1), (1, 1)], &[]);
    let xor = nj_per_kb(&[(1, 2), (1, 2), (1, 2), (1, 1), (3, 1)], &[3, 3]);
    for (got, paper) in [(not, 1.6), (and, 3.2), (nand, 4.0), (xor, 5.5)] {
        assert!((got - paper).abs() / paper < 0.10, "{got} vs paper {paper}");
    }
}

#[test]
fn figure10_speedup_band_small_scale() {
    // Scaled-down but memory-resident: the speedup should sit in the
    // paper's 5-7x neighbourhood and grow with w.
    let config = SystemConfig::gem5_calibrated();
    let w2 = run_bitmap_index(
        &config,
        AmbitMemory::ddr3_module(),
        &BitmapIndexWorkload::figure10(2 * 1024 * 1024, 2),
    );
    let w4 = run_bitmap_index(
        &config,
        AmbitMemory::ddr3_module(),
        &BitmapIndexWorkload::figure10(2 * 1024 * 1024, 4),
    );
    assert!(w2.speedup() > 3.0 && w2.speedup() < 12.0, "{}", w2.speedup());
    assert!(w4.speedup() > w2.speedup(), "speedup grows with w");
}

#[test]
fn figure11_speedup_grows_with_bits_and_shows_crossover() {
    let config = SystemConfig::gem5_calibrated();
    let run = |rows, bits| {
        run_bitweaving(
            &config,
            AmbitMemory::ddr3_module(),
            &BitWeavingWorkload { rows, bits, seed: 3 },
        )
        .unwrap()
        .speedup()
    };
    let b8 = run(512 * 1024, 8);
    let b16 = run(512 * 1024, 16);
    assert!(b16 > b8, "speedup grows with b: {b8} vs {b16}");
    // Cache crossover at fixed b: spilling L2 helps Ambit.
    let small_r = run(1 << 20, 12);
    let big_r = run(4 << 20, 12);
    assert!(big_r > small_r, "L2 spill raises speedup: {small_r} vs {big_r}");
}

#[test]
fn figure12_crossovers() {
    let config = SystemConfig::gem5_calibrated();
    let run = |e, op| run_setop(&config, AmbitMemory::ddr3_module(), &SetWorkload::figure12(e), op);
    // RB-tree wins at e=4 (except possibly union).
    let tiny = run(4, SetOperation::Intersection);
    assert!(tiny.rbtree_s < tiny.ambit_s && tiny.rbtree_s < tiny.bitset_s);
    // Ambit wins at e=256 for all three ops.
    for op in SetOperation::ALL {
        let big = run(256, op);
        assert!(big.ambit_s < big.rbtree_s, "{op}");
        assert!(big.ambit_s < big.bitset_s, "{op}");
    }
}

#[test]
fn ablation_aap_and_xor_rows_directions() {
    // Split decoder: 80 -> 49 ns exactly; xor under minimal hardware is
    // at least 1.5x slower (see ablation_xor_rows for the full story).
    let fast = AmbitConfig::ddr3_module();
    let naive = AmbitConfig {
        mode: ambit_repro::dram::AapMode::Naive,
        ..fast
    };
    assert_eq!(fast.op_latency_ps(BitwiseOp::And).unwrap(), 4 * 49_000);
    assert_eq!(naive.op_latency_ps(BitwiseOp::And).unwrap(), 4 * 80_000);
    let xor = fast.op_latency_ps(BitwiseOp::Xor).unwrap();
    let composed = 2 * fast.op_latency_ps(BitwiseOp::And).unwrap()
        + fast.op_latency_ps(BitwiseOp::Or).unwrap()
        + fast.op_latency_ps(BitwiseOp::Not).unwrap();
    assert!(composed as f64 / xor as f64 > 1.5);
}
