//! End-to-end fault-injection campaigns against the resilient executor.
//!
//! Acceptance scenario for the robustness layer: a seeded campaign at the
//! paper's Table 2 worst-case transient TRA rate (±25 % variation:
//! 26.19 %) runs a 1 Mb AND/OR/XOR workload to completion with zero wrong
//! bits, non-zero retry and scrub counts, and deterministic replay per
//! seed; spare-row exhaustion degrades to the CPU fallback path instead of
//! erroring.

use ambit_repro::core::{
    AmbitError, AmbitMemory, BitwiseOp, RecoveryReport, ResilientConfig, ResilientExecutor,
};
use ambit_repro::dram::{
    AapMode, CampaignConfig, CellFault, DramGeometry, FaultCampaign, TimingParams,
};

const MEGABIT: usize = 1 << 20;

/// Table 2, ±25 % process variation: 26.19 % of TRAs fail.
const WORST_CASE_TRA_RATE: f64 = 0.2619;

fn truth(op: BitwiseOp, a: &[bool], b: &[bool]) -> Vec<bool> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| op.apply_words(x as u64, y as u64) & 1 == 1)
        .collect()
}

/// Deterministic pseudo-random data (the campaign owns the real RNG; the
/// workload just needs fixed irregular bit patterns).
fn data(bits: usize, salt: u64) -> Vec<bool> {
    ambit_conformance::ReferenceRng::with_seed(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        .bits(bits)
}

fn run_megabit_workload(seed: u64) -> (usize, RecoveryReport) {
    let geometry = DramGeometry::ddr3_module();
    let campaign = FaultCampaign::plan(
        CampaignConfig {
            seed,
            base_tra_rate: WORST_CASE_TRA_RATE,
            tra_rate_spread: 0.25,
            stuck_cells_per_subarray: 1,
            weak_cells_per_subarray: 1,
            decay_probability: 0.01,
            first_eligible_row: 8,
        },
        &geometry,
    )
    .unwrap();
    let mut mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    mem.reserve_spare_rows(2).unwrap();
    let cfg = ResilientConfig {
        max_retries: 1,
        retry_aap_budget: 1 << 20,
        ..ResilientConfig::default()
    };
    let mut exec = ResilientExecutor::with_campaign(mem, cfg, campaign).unwrap();

    let a = exec.alloc(MEGABIT).unwrap();
    let b = exec.alloc(MEGABIT).unwrap();
    let dst = exec.alloc(MEGABIT).unwrap();
    let da = data(MEGABIT, 1);
    let db = data(MEGABIT, 2);
    exec.write(a, &da).unwrap();
    exec.write(b, &db).unwrap();

    let mut wrong = 0usize;
    for op in [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor] {
        exec.bitwise(op, a, Some(b), dst).unwrap();
        let out = exec.read(dst).unwrap();
        let want = truth(op, &da, &db);
        wrong += out.iter().zip(&want).filter(|(o, w)| o != w).count();
    }
    (wrong, *exec.report())
}

#[test]
fn megabit_workload_survives_worst_case_tra_rate() {
    let (wrong, report) = run_megabit_workload(0xA417);
    assert_eq!(wrong, 0, "resilient execution must be exact: {report:?}");
    assert_eq!(report.ops, 3);
    assert!(report.retries > 0, "worst-case rate must force retries");
    assert!(report.scrubs > 0, "retries scrub their sources");
    assert!(report.faults_detected > 0);
    // 26 % per-TRA failure is far beyond what voting can mask: the
    // executor must have degraded to the software path (Section 5.4.3)
    // rather than erroring out or returning wrong data.
    assert!(report.degraded);
    assert!(report.cpu_fallbacks > 0);
}

#[test]
fn campaign_replay_is_deterministic_per_seed() {
    let (wrong1, report1) = run_megabit_workload(0xBEE5);
    let (wrong2, report2) = run_megabit_workload(0xBEE5);
    assert_eq!(wrong1, 0);
    assert_eq!(wrong2, 0);
    assert_eq!(
        report1, report2,
        "identical seed must replay the identical campaign"
    );
    // A different seed draws a different fault plan; the recovery effort
    // will differ even though correctness holds.
    let (wrong3, report3) = run_megabit_workload(0x5EED);
    assert_eq!(wrong3, 0);
    assert_ne!(
        (report1.faults_detected, report1.decay_flips),
        (report3.faults_detected, report3.decay_flips),
        "different seeds should produce observably different campaigns"
    );
}

#[test]
fn moderate_rate_recovers_in_dram_without_degrading() {
    // Table 2 ±10 % (0.29 %): voting plus retries plus repair keeps the
    // in-DRAM path alive — no degradation, no CPU takeover.
    let geometry = DramGeometry::tiny();
    let campaign = FaultCampaign::plan(
        CampaignConfig {
            seed: 7,
            base_tra_rate: 0.0029,
            tra_rate_spread: 0.25,
            first_eligible_row: 8,
            ..CampaignConfig::default()
        },
        &geometry,
    )
    .unwrap();
    let mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    let mut exec =
        ResilientExecutor::with_campaign(mem, ResilientConfig::default(), campaign).unwrap();
    let bits = exec.memory().row_bits() * 2;
    let a = exec.alloc(bits).unwrap();
    let b = exec.alloc(bits).unwrap();
    let dst = exec.alloc(bits).unwrap();
    let da = data(bits, 3);
    let db = data(bits, 4);
    exec.write(a, &da).unwrap();
    exec.write(b, &db).unwrap();
    for _ in 0..12 {
        for op in [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor] {
            exec.bitwise(op, a, Some(b), dst).unwrap();
            assert_eq!(exec.read(dst).unwrap(), truth(op, &da, &db));
        }
    }
    assert!(!exec.is_degraded(), "0.29 % must not force degradation");
    assert!(exec.report().faults_detected > 0, "faults should fire");
}

#[test]
fn spare_row_exhaustion_degrades_to_cpu_fallback() {
    let mut mem = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    // A single spare per subarray; the campaign below plants more stuck
    // cells than that in the victim replica's rows.
    mem.reserve_spare_rows(1).unwrap();
    let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
    let bits = exec.memory().row_bits();
    let a = exec.alloc(bits).unwrap();
    let dst = exec.alloc(bits).unwrap();
    let da = data(bits, 9);
    exec.write(a, &da).unwrap();

    // Stick two destination bits of one replica at the wrong value. Both
    // replicas 0 and 1 are faulted at different bits so the voted value
    // stays correct while two independent permanent faults need remaps;
    // the single spare covers only the first.
    let spares_before = exec.memory().spare_rows_free();
    let bit0 = if da[0] { 2 } else { 0 }; // a bit whose correct value is 0
    let bit1 = (0..bits).find(|&i| !da[i] && i != bit0).unwrap();
    let replicas = exec.replicas(dst).unwrap();
    exec.memory_mut()
        .inject_fault(replicas[0], bit0, CellFault::StuckAtOne)
        .unwrap();
    exec.memory_mut()
        .inject_fault(replicas[1], bit1, CellFault::StuckAtOne)
        .unwrap();

    exec.bitwise(BitwiseOp::Copy, a, None, dst).unwrap();
    assert_eq!(exec.read(dst).unwrap(), da, "voting masks both faults");
    let report = exec.report();
    assert_eq!(
        report.remaps, 1,
        "the victim subarray had only one spare row"
    );
    // Both faulty chunks live in the same subarray (chunk 0 of every
    // replica is co-located), so its single spare is now gone while other
    // subarrays keep theirs.
    assert_eq!(exec.memory().spare_rows_free(), spares_before - 1);

    // The vector is now degraded: later operations writing it must take
    // the CPU fallback path — and still be exact.
    let r = exec.bitwise(BitwiseOp::Not, a, None, dst).unwrap();
    assert_eq!(r.cpu_fallbacks, 1, "degraded vector runs on the CPU");
    let want: Vec<bool> = da.iter().map(|&v| !v).collect();
    assert_eq!(exec.read(dst).unwrap(), want);

    // Direct driver-level check of the exhaustion error itself.
    let mut raw = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    raw.reserve_spare_rows(1).unwrap();
    let v = raw.alloc(raw.row_bits()).unwrap();
    raw.remap_bit(v, 0).unwrap();
    let err = raw.remap_bit(v, 1).unwrap_err();
    assert!(
        matches!(err, AmbitError::SpareRowsExhausted { .. }),
        "second remap with one spare must exhaust: {err}"
    );
}
