//! Integration tests for the OS-threaded batch execution path
//! (`IssuePolicy::BankParallelThreaded`) and the `Send + Sync` data plane
//! behind it: the threaded path must be observably identical to
//! single-threaded bank-parallel issue (receipts, command traces, memory
//! image, device stats), concurrent submitters over disjoint handle sets
//! must leave the memory in the same state as a serial run, shared
//! references must be readable from many threads at once, and fault-armed
//! devices must fall back to serial issue so the pinned per-bit RNG draw
//! stream is preserved.

use std::sync::Mutex;

use ambit_repro::core::{
    AllocGroup, AmbitMemory, BatchBuilder, BitVectorHandle, BitwiseOp, IssuePolicy,
};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use ambit_repro::telemetry::Registry;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tiny() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn tiny_dual_channel() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny_dual_channel(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

const OPS: [BitwiseOp; 7] = [
    BitwiseOp::Not,
    BitwiseOp::And,
    BitwiseOp::Or,
    BitwiseOp::Nand,
    BitwiseOp::Nor,
    BitwiseOp::Xor,
    BitwiseOp::Xnor,
];

/// Builds two identical memories with a shared handle pool and random
/// contents; handles are identical because allocation order is.
fn mirrored_pools(seed: u64, pool: usize) -> (AmbitMemory, AmbitMemory, Vec<BitVectorHandle>) {
    mirrored_pools_on(seed, pool, tiny, 2)
}

fn mirrored_pools_on(
    seed: u64,
    pool: usize,
    make: fn() -> AmbitMemory,
    chunks: usize,
) -> (AmbitMemory, AmbitMemory, Vec<BitVectorHandle>) {
    let mut a = make();
    let mut b = make();
    // `a` is the threaded-policy memory in every test: force a multi-worker
    // pool so the threaded path executes (and is exercised) even on a
    // one-core host, where the default pool would degrade it to
    // BankParallel.
    a.set_pool_threads(4);
    let bits = chunks * a.row_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
    let handles: Vec<BitVectorHandle> = (0..pool)
        .map(|_| {
            let ha = a.alloc(bits).unwrap();
            let hb = b.alloc(bits).unwrap();
            assert_eq!(ha, hb, "mirrored allocation order");
            let data: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
            a.poke_bits(ha, &data).unwrap();
            b.poke_bits(hb, &data).unwrap();
            ha
        })
        .collect();
    (a, b, handles)
}

/// Draws a random batch over the pool: two-source ops, maj3, and folds,
/// with shared sources and in-place destinations all allowed.
fn random_batch(rng: &mut ChaCha8Rng, h: &[BitVectorHandle], len: usize) -> BatchBuilder {
    let mut batch = BatchBuilder::new();
    for _ in 0..len {
        match rng.gen_range(0u32..8) {
            6 => batch.maj3(
                h[rng.gen_range(0..h.len())],
                h[rng.gen_range(0..h.len())],
                h[rng.gen_range(0..h.len())],
                h[rng.gen_range(0..h.len())],
            ),
            7 => {
                let k = rng.gen_range(2..4usize);
                let srcs: Vec<_> = (0..k).map(|_| h[rng.gen_range(0..h.len())]).collect();
                batch.fold(
                    if rng.gen() { BitwiseOp::And } else { BitwiseOp::Or },
                    &srcs,
                    h[rng.gen_range(0..h.len())],
                )
            }
            _ => {
                let op = OPS[rng.gen_range(0..OPS.len())];
                let src2 = (op.source_count() == 2).then(|| h[rng.gen_range(0..h.len())]);
                batch.bitwise(op, h[rng.gen_range(0..h.len())], src2, h[rng.gen_range(0..h.len())])
            }
        };
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: the threaded path is indistinguishable from
    /// single-threaded bank-parallel issue in everything but wall clock —
    /// same receipt (timing, energy, busy attribution), same command
    /// trace on the shared bus, same final memory image, same device
    /// activation stats.
    #[test]
    fn threaded_batch_is_byte_identical_to_bank_parallel(seed in any::<u64>(), len in 1usize..10) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (mut threaded, mut reference, h) = mirrored_pools(seed, 6);
        threaded.controller_mut().timer_mut().set_tracing(true);
        reference.controller_mut().timer_mut().set_tracing(true);
        let batch = random_batch(&mut rng, &h, len);

        let rt = threaded.execute_batch(&batch, IssuePolicy::BankParallelThreaded).unwrap();
        let rr = reference.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();

        prop_assert_eq!(&rt, &rr, "receipts diverge");
        prop_assert_eq!(
            threaded.controller().timer().trace().unwrap(),
            reference.controller().timer().trace().unwrap(),
            "command traces diverge"
        );
        prop_assert_eq!(
            threaded.controller().timer().stats(),
            reference.controller().timer().stats()
        );
        prop_assert_eq!(
            threaded.controller().device().stats(),
            reference.controller().device().stats()
        );
        for (i, &handle) in h.iter().enumerate() {
            prop_assert_eq!(
                threaded.peek_bits(handle).unwrap(),
                reference.peek_bits(handle).unwrap(),
                "vector {} diverged", i
            );
        }
    }

    /// The same identity on a two-channel geometry, where allocations span
    /// both channels (4 row-chunks across 4 flat banks) and the threaded
    /// timing pass runs one shard per channel: the deterministic shard
    /// merge must reproduce the serial receipts, the serially-interleaved
    /// command trace, timer stats, and memory image exactly.
    #[test]
    fn threaded_batch_is_byte_identical_across_channels(seed in any::<u64>(), len in 1usize..10) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (mut threaded, mut reference, h) =
            mirrored_pools_on(seed, 4, tiny_dual_channel, 4);
        threaded.controller_mut().timer_mut().set_tracing(true);
        reference.controller_mut().timer_mut().set_tracing(true);
        let batch = random_batch(&mut rng, &h, len);

        let rt = threaded.execute_batch(&batch, IssuePolicy::BankParallelThreaded).unwrap();
        let rr = reference.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();

        prop_assert_eq!(&rt, &rr, "receipts diverge");
        prop_assert_eq!(
            threaded.controller().timer().trace().unwrap(),
            reference.controller().timer().trace().unwrap(),
            "command traces diverge"
        );
        prop_assert_eq!(
            threaded.controller().timer().stats(),
            reference.controller().timer().stats()
        );
        prop_assert_eq!(
            threaded.controller().device().stats(),
            reference.controller().device().stats()
        );
        for (i, &handle) in h.iter().enumerate() {
            prop_assert_eq!(
                threaded.peek_bits(handle).unwrap(),
                reference.peek_bits(handle).unwrap(),
                "vector {} diverged", i
            );
        }
    }
}

/// Allocates `a AND b -> d` chains in each of `groups`, mirrored across
/// both memories so handles line up, and returns one batch per group plus
/// every destination handle.
#[allow(clippy::type_complexity)]
fn mirrored_group_batches(
    threaded: &mut AmbitMemory,
    serial: &mut AmbitMemory,
    groups: usize,
    per_group: usize,
) -> (Vec<BatchBuilder>, Vec<BitVectorHandle>) {
    let bits = threaded.row_bits();
    let mut batches = Vec::new();
    let mut dsts = Vec::new();
    for g in 0..groups {
        let group = AllocGroup(g as u32);
        let mut alloc = |bits| {
            let ha = threaded.alloc_in_group(bits, group).unwrap();
            let hb = serial.alloc_in_group(bits, group).unwrap();
            assert_eq!(ha, hb, "mirrored allocation order");
            ha
        };
        let a = alloc(bits);
        let b = alloc(bits);
        let group_dsts: Vec<_> = (0..per_group).map(|_| alloc(bits)).collect();
        let pa: Vec<bool> = (0..bits).map(|i| (i + g) % 2 == 0).collect();
        let pb: Vec<bool> = (0..bits).map(|i| (i + g) % 3 == 0).collect();
        threaded.poke_bits(a, &pa).unwrap();
        serial.poke_bits(a, &pa).unwrap();
        threaded.poke_bits(b, &pb).unwrap();
        serial.poke_bits(b, &pb).unwrap();
        let mut batch = BatchBuilder::new();
        for &d in &group_dsts {
            batch.bitwise(BitwiseOp::And, a, Some(b), d);
        }
        batches.push(batch);
        dsts.extend(group_dsts);
    }
    (batches, dsts)
}

/// The satellite stress test: N OS threads concurrently submit batches
/// over disjoint handle sets (one bank group each) against one shared
/// memory. Whatever order the scheduler picks, the final memory bytes and
/// the telemetry op counters must be identical to the same programs run
/// serially on a mirrored module.
#[test]
fn concurrent_submitters_over_disjoint_handles_match_serial() {
    let groups = 4;
    let per_group = 8;
    let mut threaded = AmbitMemory::ddr3_module();
    let mut serial = AmbitMemory::ddr3_module();
    threaded.set_pool_threads(4);
    threaded.set_telemetry(Registry::new());
    serial.set_telemetry(Registry::new());
    let (batches, dsts) = mirrored_group_batches(&mut threaded, &mut serial, groups, per_group);

    // Concurrent submission: each thread owns one batch and races to
    // lock-and-execute it on the threaded issue path.
    let shared = Mutex::new(threaded);
    std::thread::scope(|scope| {
        for batch in &batches {
            scope.spawn(|| {
                let mut mem = shared.lock().unwrap();
                mem.execute_batch(batch, IssuePolicy::BankParallelThreaded)
                    .unwrap();
            });
        }
    });
    let threaded = shared.into_inner().unwrap();

    // Serial reference: same batches, fixed order, serial issue.
    for batch in &batches {
        serial.execute_batch(batch, IssuePolicy::Serial).unwrap();
    }

    for (i, &d) in dsts.iter().enumerate() {
        assert_eq!(
            threaded.peek_bits(d).unwrap(),
            serial.peek_bits(d).unwrap(),
            "destination {i} diverged from the serial reference"
        );
    }
    let ops = |mem: &AmbitMemory| {
        mem.telemetry()
            .unwrap()
            .counter_value("ambit_ops_total", &[("op", "bbop_and")])
    };
    assert_eq!(ops(&threaded), Some((groups * per_group) as u64));
    assert_eq!(ops(&threaded), ops(&serial), "telemetry counters diverged");
    assert_eq!(
        threaded.controller().device().stats(),
        serial.controller().device().stats(),
        "device activation stats diverged"
    );
}

/// `AmbitMemory` is `Sync`: many threads may hold `&AmbitMemory` and read
/// concurrently (the paper's multi-tenant serving story needs shared
/// read-side access between submissions).
#[test]
fn shared_references_read_from_many_threads() {
    let mut mem = tiny();
    let bits = mem.row_bits();
    let h = mem.alloc(bits).unwrap();
    let data: Vec<bool> = (0..bits).map(|i| i % 5 == 0).collect();
    mem.poke_bits(h, &data).unwrap();

    let mem = &mem;
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || mem.peek_bits(h).unwrap()))
            .collect();
        for reader in readers {
            assert_eq!(reader.join().unwrap(), data);
        }
    });
}

/// Pool-lifecycle satellite: 1000 consecutive small batches through one
/// memory's persistent pool stay byte-for-byte identical to serial
/// execution on a mirrored module, and the pool's counters show workers
/// being reused rather than respawned per batch (the entire point of
/// keeping them alive).
#[test]
fn thousand_consecutive_batches_match_serial_and_reuse_workers() {
    let (mut threaded, mut serial, h) = mirrored_pools(0xbeef, 4);
    for round in 0..1000u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(round);
        let batch = random_batch(&mut rng, &h, 2);
        let rt = threaded
            .execute_batch(&batch, IssuePolicy::BankParallelThreaded)
            .unwrap();
        let rr = serial.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
        assert_eq!(rt, rr, "receipts diverged at round {round}");
    }
    for (i, &handle) in h.iter().enumerate() {
        assert_eq!(
            threaded.peek_bits(handle).unwrap(),
            serial.peek_bits(handle).unwrap(),
            "vector {i} diverged after 1000 batches"
        );
    }
    assert_eq!(
        threaded.controller().timer().stats(),
        serial.controller().timer().stats(),
        "timer stats diverged after 1000 batches"
    );
    let stats = threaded.pool_stats();
    if stats.target_workers >= 2 {
        assert!(
            stats.jobs_executed + stats.inline_jobs > 0,
            "threaded batches never reached the pool: {stats:?}"
        );
        assert!(
            stats.cold_spawns <= stats.target_workers as u64,
            "workers respawned instead of reused: {stats:?}"
        );
    }
}

/// Auto-degrade satellite: a single-worker pool (what a one-core host
/// gets from `available_parallelism`) silently degrades
/// `BankParallelThreaded` to plain `BankParallel` — identical results, and
/// the pool is never touched, so there is no spawn overhead to pay.
#[test]
fn single_worker_pool_degrades_threaded_to_bank_parallel() {
    let (mut degraded, mut reference, h) = mirrored_pools(0x1c0de, 4);
    degraded.set_pool_threads(1);
    degraded.controller_mut().timer_mut().set_tracing(true);
    reference.controller_mut().timer_mut().set_tracing(true);
    let mut rng = ChaCha8Rng::seed_from_u64(0x1c0de);
    let batch = random_batch(&mut rng, &h, 6);

    let rt = degraded
        .execute_batch(&batch, IssuePolicy::BankParallelThreaded)
        .unwrap();
    let rr = reference
        .execute_batch(&batch, IssuePolicy::BankParallel)
        .unwrap();
    assert_eq!(rt, rr, "degraded receipts diverge");
    assert_eq!(
        degraded.controller().timer().trace().unwrap(),
        reference.controller().timer().trace().unwrap(),
        "degraded command traces diverge"
    );
    for &handle in &h {
        assert_eq!(
            degraded.peek_bits(handle).unwrap(),
            reference.peek_bits(handle).unwrap()
        );
    }
    let stats = degraded.pool_stats();
    assert_eq!(stats.jobs_executed, 0, "degraded path must bypass the pool");
    assert_eq!(stats.inline_jobs, 0, "degraded path must bypass the pool");
    assert_eq!(stats.workers, 0, "no worker threads on a one-core host");
}

/// When the device is fault-armed the threaded policy must fall back to
/// serial issue: the per-bit fault RNG draw stream is pinned to the serial
/// command order, so both policies must produce identical (faulty) results
/// draw for draw.
#[test]
fn fault_armed_threaded_policy_falls_back_to_serial_issue() {
    let seed = 0x7a51;
    let (mut threaded, mut reference, h) = mirrored_pools(seed, 4);
    threaded.set_tra_fault_rate(0.26).unwrap();
    reference.set_tra_fault_rate(0.26).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let batch = random_batch(&mut rng, &h, 8);

    let rt = threaded
        .execute_batch(&batch, IssuePolicy::BankParallelThreaded)
        .unwrap();
    let rr = reference
        .execute_batch(&batch, IssuePolicy::BankParallel)
        .unwrap();
    assert_eq!(rt, rr, "fallback receipts diverge");
    for (i, &handle) in h.iter().enumerate() {
        assert_eq!(
            threaded.peek_bits(handle).unwrap(),
            reference.peek_bits(handle).unwrap(),
            "vector {i} diverged: the fault RNG draw streams must line up"
        );
    }
}
