//! Integration of the cache hierarchy and coherence model with Ambit
//! operations (paper Section 5.4.4): the memory controller flushes dirty
//! source lines and invalidates destination lines around each in-DRAM op.

use ambit_repro::core::{AmbitMemory, BitwiseOp};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use ambit_repro::sys::{AccessResult, CacheHierarchy, CoherenceModel, SystemConfig};

/// Simulates a CPU that wrote the source vector (dirtying its caches),
/// then an Ambit op over that vector, then a CPU read of the result.
#[test]
fn cpu_write_ambit_op_cpu_read_flow() {
    let config = SystemConfig::micro17();
    let mut caches = CacheHierarchy::micro17();
    let coherence = CoherenceModel::new(config);

    // Host addresses of the two vectors (8 KB each).
    let src_addr = 0x10_0000u64;
    let dst_addr = 0x20_0000u64;
    let bytes = 8192u64;

    // CPU writes the source: lines become dirty.
    for offset in (0..bytes).step_by(64) {
        caches.access(src_addr + offset, true);
    }
    // CPU also read the (stale) destination earlier.
    for offset in (0..bytes).step_by(64) {
        caches.access(dst_addr + offset, false);
    }

    // Controller prepares the Ambit op.
    let cost = coherence.prepare(&mut caches, &[(src_addr, bytes)], (dst_addr, bytes));
    assert_eq!(cost.flushed_lines as u64, bytes / 64, "all source lines dirty");
    assert!(cost.latency_s > 0.0);

    // The in-DRAM operation itself.
    let mut mem = AmbitMemory::new(
        DramGeometry::ddr3_module(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &vec![true; bits]).unwrap();
    mem.bitwise(BitwiseOp::Not, a, None, d).unwrap();
    assert_eq!(mem.popcount(d).unwrap(), 0);

    // CPU reads the destination: must miss (stale lines were invalidated).
    assert_eq!(caches.access(dst_addr, false), AccessResult::Miss);
    // Source lines were flushed, so they miss too — but nothing is dirty.
    assert_eq!(caches.access(src_addr, false), AccessResult::Miss);
}

#[test]
fn second_op_on_same_sources_flushes_nothing() {
    // After the first flush, re-running an op on unchanged sources incurs
    // no coherence latency — the steady-state of the paper's workloads.
    let config = SystemConfig::micro17();
    let mut caches = CacheHierarchy::micro17();
    let coherence = CoherenceModel::new(config);
    let src = (0x40_0000u64, 8192u64);
    for offset in (0..src.1).step_by(64) {
        caches.access(src.0 + offset, true);
    }
    let first = coherence.prepare(&mut caches, &[src], (0x50_0000, 8192));
    let second = coherence.prepare(&mut caches, &[src], (0x50_0000, 8192));
    assert!(first.flushed_lines > 0);
    assert_eq!(second.flushed_lines, 0);
    assert_eq!(second.latency_s, 0.0);
}

#[test]
fn coherence_latency_is_small_next_to_dram_ops_at_scale() {
    // For a 1 Mbit vector, the worst-case flush is comparable to a couple
    // of row reads — it cannot erase Ambit's advantage (Section 5.4.4).
    let config = SystemConfig::micro17();
    let coherence = CoherenceModel::new(config);
    let vector_bytes = 1 << 17; // 1 Mbit
    let flush = coherence.worst_case_latency_s(vector_bytes);

    let mut mem = AmbitMemory::new(
        DramGeometry::ddr3_module(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let bits = (vector_bytes * 8) as usize;
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    let receipt = mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    let dram_s = receipt.latency_ps() as f64 * 1e-12;

    // The conventional copy of the same data over the channel would cost
    // about twice the flush; Ambit's op plus a worst-case flush stays far
    // below the CPU's read-modify-write of 3x the vector.
    let cpu_s = 3.0 * vector_bytes as f64 / (config.mem_bw * config.mem_efficiency);
    assert!(dram_s + flush < cpu_s, "{dram_s} + {flush} !< {cpu_s}");
}
