//! Cross-crate integration: the full stack from bbop instruction to
//! sense-amplifier bits, with timing and energy accounting along the way.

use ambit_repro::core::{
    isa, AmbitError, AmbitMemory, BbopInstruction, BitwiseOp, ExecutionPath,
};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams, PS_PER_NS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn module() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::ddr3_module(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

#[test]
fn bbop_instruction_to_dram_and_back() {
    let mut mem = module();
    let bits = mem.row_bits() * 4; // 4 rows, striped over 4 banks
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.write_bits(a, &da).unwrap();
    mem.write_bits(b, &db).unwrap();

    let outcome = isa::execute(
        &mut mem,
        &BbopInstruction {
            op: BitwiseOp::Xnor,
            dst: d,
            src1: a,
            src2: Some(b),
            size_bytes: bits / 8,
        },
    )
    .unwrap();
    assert_eq!(outcome.path, ExecutionPath::Ambit);
    assert!(outcome.dram_energy_nj > 0.0);

    let got = mem.read_bits(d).unwrap();
    for i in 0..bits {
        assert_eq!(got[i], !(da[i] ^ db[i]), "bit {i}");
    }
}

#[test]
fn chained_operations_compose() {
    // Compute (a AND b) XOR (a OR b) == a XOR b using only in-DRAM steps.
    let mut mem = module();
    let bits = mem.row_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(78);
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let t1 = mem.alloc(bits).unwrap();
    let t2 = mem.alloc(bits).unwrap();
    let out = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &da).unwrap();
    mem.poke_bits(b, &db).unwrap();

    mem.bitwise(BitwiseOp::And, a, Some(b), t1).unwrap();
    mem.bitwise(BitwiseOp::Or, a, Some(b), t2).unwrap();
    mem.bitwise(BitwiseOp::Xor, t1, Some(t2), out).unwrap();

    let direct = mem.alloc(bits).unwrap();
    mem.bitwise(BitwiseOp::Xor, a, Some(b), direct).unwrap();
    assert_eq!(mem.peek_bits(out).unwrap(), mem.peek_bits(direct).unwrap());
}

#[test]
fn timing_makespan_reflects_bank_parallelism() {
    // A 16-row vector on an 8-bank module: two rounds of 8 parallel chunk
    // programs, not 16 serial ones.
    let mut mem = module();
    let bits = mem.row_bits() * 16;
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    let receipt = mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    let one_program = 4 * 49 * PS_PER_NS;
    assert!(
        receipt.latency_ps() < 4 * one_program,
        "16 chunks on 8 banks should take ~2 rounds, got {} ns",
        receipt.latency_ps() / PS_PER_NS
    );
    assert_eq!(receipt.aaps, 64, "16 chunks x 4 AAPs");
}

#[test]
fn energy_grows_linearly_with_vector_size() {
    let mut mem = module();
    let small_bits = mem.row_bits();
    let a = mem.alloc(small_bits).unwrap();
    let b = mem.alloc(small_bits).unwrap();
    let d = mem.alloc(small_bits).unwrap();
    let small = mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();

    let big_bits = mem.row_bits() * 8;
    let a8 = mem.alloc(big_bits).unwrap();
    let b8 = mem.alloc(big_bits).unwrap();
    let d8 = mem.alloc(big_bits).unwrap();
    let big = mem.bitwise(BitwiseOp::And, a8, Some(b8), d8).unwrap();

    let ratio = big.energy_nj / small.energy_nj;
    assert!((ratio - 8.0).abs() < 1e-9, "energy ratio {ratio}");
}

#[test]
fn unaligned_sizes_fall_back_to_cpu_and_match() {
    let mut mem = module();
    let bits = 1000; // not row-aligned
    let mut rng = ChaCha8Rng::seed_from_u64(79);
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let a = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &da).unwrap();

    let outcome = isa::execute(
        &mut mem,
        &BbopInstruction {
            op: BitwiseOp::Not,
            dst: d,
            src1: a,
            src2: None,
            size_bytes: bits / 8,
        },
    )
    .unwrap();
    assert_eq!(outcome.path, ExecutionPath::Cpu);
    let got = mem.peek_bits(d).unwrap();
    for i in 0..(bits / 8) * 8 {
        assert_eq!(got[i], !da[i], "bit {i}");
    }
}

#[test]
fn capacity_exhaustion_is_graceful() {
    let mut mem = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let mut allocated = Vec::new();
    loop {
        match mem.alloc(mem.row_bits()) {
            Ok(h) => allocated.push(h),
            Err(AmbitError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
        assert!(allocated.len() < 10_000, "allocator never reported full");
    }
    // Everything allocated still works.
    let d = allocated[0];
    let a = allocated[1];
    assert!(mem.bitwise(BitwiseOp::Not, a, None, d).is_ok());
}

#[test]
fn simulated_time_only_moves_forward() {
    let mut mem = module();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    let mut last = 0;
    for _ in 0..10 {
        let receipt = mem.bitwise(BitwiseOp::Not, a, None, d).unwrap();
        assert!(receipt.end_ps >= receipt.start_ps);
        assert!(receipt.end_ps > last, "time regressed");
        last = receipt.end_ps;
    }
}
