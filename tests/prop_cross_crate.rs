//! Cross-crate property-based tests: every in-DRAM operation agrees with
//! the software reference on arbitrary inputs, and the algebraic laws of
//! the bitwise operations hold through the full simulation stack.

use ambit_repro::core::{AmbitMemory, BitwiseOp};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use proptest::prelude::*;

fn memory() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn op_strategy() -> impl Strategy<Value = BitwiseOp> {
    prop_oneof![
        Just(BitwiseOp::Not),
        Just(BitwiseOp::And),
        Just(BitwiseOp::Or),
        Just(BitwiseOp::Nand),
        Just(BitwiseOp::Nor),
        Just(BitwiseOp::Xor),
        Just(BitwiseOp::Xnor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_op_on_any_data_matches_reference(
        op in op_strategy(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let mut mem = memory();
        let bits = mem.row_bits();
        let da: Vec<bool> = (0..bits).map(|i| (seed_a.rotate_left((i % 64) as u32) ^ i as u64) & 1 == 1).collect();
        let db: Vec<bool> = (0..bits).map(|i| (seed_b.rotate_right((i % 61) as u32) ^ (i as u64) << 1) & 2 == 2).collect();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &da).unwrap();
        mem.poke_bits(b, &db).unwrap();
        let src2 = (op.source_count() == 2).then_some(b);
        mem.bitwise(op, a, src2, d).unwrap();
        let got = mem.peek_bits(d).unwrap();
        for i in 0..bits {
            let expect = op.apply_words(da[i] as u64, db[i] as u64) & 1 == 1;
            prop_assert_eq!(got[i], expect, "{} bit {}", op, i);
        }
        // Sources must survive (Section 3.3: copies protect the operands).
        prop_assert_eq!(mem.peek_bits(a).unwrap(), da);
        if src2.is_some() {
            prop_assert_eq!(mem.peek_bits(b).unwrap(), db);
        }
    }

    #[test]
    fn de_morgan_holds_in_dram(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        // !(a & b) == !a | !b, each side computed with separate programs.
        let mut mem = memory();
        let bits = mem.row_bits();
        let da: Vec<bool> = (0..bits).map(|i| seed_a >> (i % 64) & 1 == 1).collect();
        let db: Vec<bool> = (0..bits).map(|i| seed_b >> (i % 64) & 1 == 1).collect();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let lhs = mem.alloc(bits).unwrap();
        let na = mem.alloc(bits).unwrap();
        let nb = mem.alloc(bits).unwrap();
        let rhs = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &da).unwrap();
        mem.poke_bits(b, &db).unwrap();

        mem.bitwise(BitwiseOp::Nand, a, Some(b), lhs).unwrap();
        mem.bitwise(BitwiseOp::Not, a, None, na).unwrap();
        mem.bitwise(BitwiseOp::Not, b, None, nb).unwrap();
        mem.bitwise(BitwiseOp::Or, na, Some(nb), rhs).unwrap();

        prop_assert_eq!(mem.peek_bits(lhs).unwrap(), mem.peek_bits(rhs).unwrap());
    }

    #[test]
    fn double_negation_is_identity(seed in any::<u64>()) {
        let mut mem = memory();
        let bits = mem.row_bits();
        let data: Vec<bool> = (0..bits).map(|i| seed >> (i % 64) & 1 == 1).collect();
        let a = mem.alloc(bits).unwrap();
        let t = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &data).unwrap();
        mem.bitwise(BitwiseOp::Not, a, None, t).unwrap();
        mem.bitwise(BitwiseOp::Not, t, None, d).unwrap();
        prop_assert_eq!(mem.peek_bits(d).unwrap(), data);
    }

    #[test]
    fn xor_is_its_own_inverse(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let mut mem = memory();
        let bits = mem.row_bits();
        let da: Vec<bool> = (0..bits).map(|i| seed_a >> (i % 64) & 1 == 1).collect();
        let db: Vec<bool> = (0..bits).map(|i| seed_b >> (i % 64) & 1 == 1).collect();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let t = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &da).unwrap();
        mem.poke_bits(b, &db).unwrap();
        mem.bitwise(BitwiseOp::Xor, a, Some(b), t).unwrap();
        mem.bitwise(BitwiseOp::Xor, t, Some(b), d).unwrap();
        prop_assert_eq!(mem.peek_bits(d).unwrap(), da);
    }

    #[test]
    fn popcount_equals_host_count(len in 1usize..400, seed in any::<u64>()) {
        let mut mem = memory();
        let data: Vec<bool> = (0..len).map(|i| seed >> (i % 64) & 1 == 1).collect();
        let a = mem.alloc(len).unwrap();
        mem.poke_bits(a, &data).unwrap();
        let expect = data.iter().filter(|&&b| b).count();
        prop_assert_eq!(mem.popcount(a).unwrap(), expect);
    }
}
