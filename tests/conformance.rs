//! End-to-end acceptance for the differential conformance subsystem: a
//! fault-free smoke sweep through every execution path, fault-armed
//! recovery consistency, and the full divergence workflow — a seeded
//! mutation produces a minimized JSON repro that replays deterministically
//! to the same failure.

use ambit_conformance::{generate, run_oracle, GeneratorConfig, Mutation, Repro};

#[test]
fn fault_free_sweep_conforms_on_every_path() {
    let cfg = GeneratorConfig::default();
    for seed in 100..150 {
        let program = generate(seed, &cfg);
        let report = run_oracle(&program, None);
        assert!(
            report.ok(),
            "seed {seed} diverged: {:#?}",
            report.failures
        );
    }
}

#[test]
fn fault_armed_sweep_recovers_consistently() {
    let cfg = GeneratorConfig { fault_chance: 1.0, ..GeneratorConfig::default() };
    let mut armed = 0;
    for seed in 100..130 {
        let program = generate(seed, &cfg);
        assert!(program.fault_tra_rate.is_some());
        armed += 1;
        let report = run_oracle(&program, None);
        assert!(
            report.ok(),
            "seed {seed} recovery inconsistency: {:#?}",
            report.failures
        );
    }
    assert!(armed > 0);
}

/// The advertised repro workflow end to end: seed a divergence with the
/// test-only mutation hook, capture a minimized repro, serialize it to a
/// self-contained JSON file, read it back, and replay it to the same
/// failure — twice, proving the replay is deterministic.
#[test]
fn seeded_divergence_round_trips_through_a_minimized_json_repro() {
    // Find a fault-free generated program the mutation actually breaks
    // (the flipped readback bit must fall inside a vector the program's
    // ops leave live).
    let cfg = GeneratorConfig::default();
    let (program, mutation) = (100..200)
        .find_map(|seed| {
            let program = generate(seed, &cfg);
            let mutation = Mutation {
                path: "eager".to_string(),
                vector: 0,
                bit: 0,
            };
            let report = run_oracle(&program, Some(&mutation));
            (!report.ok()).then_some((program, mutation))
        })
        .expect("some seed in 100..200 must be mutable into a divergence");

    let repro = Repro::capture(&program, Some(&mutation)).expect("divergence must capture");
    assert!(
        repro.program.ops.len() <= program.ops.len(),
        "minimization must never grow the program"
    );
    assert!(!repro.failures.is_empty(), "captured repro records the failure");

    // Self-contained file round-trip through a temp path.
    let path = std::env::temp_dir().join(format!(
        "ambit_conformance_repro_{}_{}.json",
        std::process::id(),
        program.seed
    ));
    std::fs::write(&path, repro.to_json().to_string()).unwrap();
    let loaded = Repro::from_json_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded.program.to_json(), repro.program.to_json());

    // Deterministic replay: same failing path set on every run.
    assert!(loaded.reproduces(), "minimized repro must replay to a failure");
    let first = loaded.replay();
    let second = loaded.replay();
    fn paths(r: &ambit_conformance::OracleReport) -> Vec<String> {
        let mut p: Vec<String> = r.failures.iter().map(|f| f.path.clone()).collect();
        p.sort_unstable();
        p.dedup();
        p
    }
    assert_eq!(paths(&first), paths(&second), "replay must be deterministic");
}

/// The oracle must stay quiet when no mutation is armed on the same
/// programs the mutation test breaks — the divergence comes from the hook,
/// not from the engines.
#[test]
fn mutation_hook_is_the_only_source_of_divergence() {
    let cfg = GeneratorConfig::default();
    for seed in 100..110 {
        let program = generate(seed, &cfg);
        assert!(run_oracle(&program, None).ok(), "seed {seed} diverged unmutated");
    }
}
