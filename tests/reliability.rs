//! Cross-crate reliability integration: circuit-model failure rates drive
//! fault injection in the functional device, and the TMR ECC of paper
//! Section 5.4.5 recovers the data.

use ambit_repro::circuit::{run_monte_carlo, CircuitParams};
use ambit_repro::core::{bitwise_tmr, AmbitMemory, BitwiseOp, TmrVector};
use ambit_repro::dram::{AapMode, CellFault, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn memory() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

#[test]
fn circuit_predicted_faults_corrupt_raw_ops_proportionally() {
    let params = CircuitParams::ddr3_55nm();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mc = run_monte_carlo(&params, 0.15, 50_000, &mut rng);
    let rate = mc.failure_rate();
    assert!(rate > 0.01, "±15% should fail a few percent of TRAs");

    let mut mem = memory();
    mem.set_tra_fault_rate(rate).unwrap();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    let mut wrong = 0usize;
    let trials = 200;
    for _ in 0..trials {
        mem.poke_bits(a, &da).unwrap();
        mem.poke_bits(b, &db).unwrap();
        mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
        let got = mem.peek_bits(d).unwrap();
        wrong += (0..bits).filter(|&i| got[i] != (da[i] && db[i])).count();
    }
    let observed = wrong as f64 / (trials * bits) as f64;
    // One TRA per AND: the bit error rate should be near the TRA rate.
    assert!(
        (observed - rate).abs() < 0.4 * rate,
        "observed {observed}, injected {rate}"
    );
}

#[test]
fn tmr_recovers_everything_at_realistic_variation() {
    // At the paper's "reliable" corner (±10%, 0.29% failures) TMR should
    // make data corruption essentially disappear.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut mem = memory();
    mem.set_tra_fault_rate(0.003).unwrap();
    let bits = mem.row_bits();
    let a = TmrVector::alloc(&mut mem, bits).unwrap();
    let b = TmrVector::alloc(&mut mem, bits).unwrap();
    let d = TmrVector::alloc(&mut mem, bits).unwrap();
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    let mut wrong = 0usize;
    for _ in 0..100 {
        a.write(&mut mem, &da).unwrap();
        b.write(&mut mem, &db).unwrap();
        bitwise_tmr(&mut mem, BitwiseOp::Or, &a, Some(&b), &d).unwrap();
        let voted = d.read_voted(&mem).unwrap();
        wrong += (0..bits).filter(|&i| voted.data[i] != (da[i] || db[i])).count();
    }
    // P(two replicas fail the same bit) ≈ 3·(0.003)² ≈ 2.7e-5: across
    // 100 × 128 bits ≈ 0.3 expected. Allow a little slack.
    assert!(wrong <= 3, "TMR left {wrong} wrong bits");
}

#[test]
fn stuck_at_fault_in_one_replica_is_invisible_to_the_application() {
    let mut mem = memory();
    let bits = mem.row_bits();
    let v = TmrVector::alloc(&mut mem, bits).unwrap();
    let data: Vec<bool> = (0..bits).map(|i| i % 2 == 0).collect();
    v.write(&mut mem, &data).unwrap();
    // Hardware fault in replica 0.
    mem.inject_fault(v.replicas()[0], 0, CellFault::StuckAtZero).unwrap();
    mem.poke_bits(v.replicas()[0], &data).unwrap();

    // The fault shows up in the replica but not in the voted data, through
    // an arbitrary number of scrub cycles (the stuck cell re-corrupts).
    for _ in 0..3 {
        let read = v.read_voted(&mem).unwrap();
        assert_eq!(read.data, data);
        v.scrub(&mut mem).unwrap();
    }
    let raw = mem.peek_bits(v.replicas()[0]).unwrap();
    assert!(!raw[0], "the stuck cell itself stays wrong");
}

#[test]
fn retention_discipline_matches_the_papers_argument() {
    // Strict retention mode: TRAs on stale rows fail; Ambit's copy-first
    // discipline (which refreshes operands) keeps working.
    use ambit_repro::core::{AmbitController, RowAddress};
    use ambit_repro::dram::BankId;

    let mut ctrl = AmbitController::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let bank = BankId::zero();
    let bits = ctrl.row_bits();
    ctrl.device_mut().set_retention_window(Some(64_000_000));
    ctrl.poke_data(bank, 0, 0, &ambit_repro::dram::BitRow::ones(bits)).unwrap();
    ctrl.poke_data(bank, 0, 1, &ambit_repro::dram::BitRow::ones(bits)).unwrap();

    // Let everything in the subarray go stale (65 ms idle, no refresh).
    ctrl.device_mut().advance_time_ns(65_000_000);

    // The Ambit AND still works: its first AAPs copy (and thereby refresh)
    // the operands into the designated rows right before the TRA.
    let result = ctrl.execute(
        BitwiseOp::And,
        bank,
        0,
        RowAddress::D(0),
        Some(RowAddress::D(1)),
        RowAddress::D(2),
    );
    assert!(result.is_ok(), "copy-first discipline defeats staleness: {result:?}");
    assert_eq!(ctrl.peek_data(bank, 0, 2).unwrap().count_ones(), bits);
}
