//! Property-based tests of the TMR voting layer (paper Section 5.4.5)
//! against randomized stuck-at fault campaigns: a voted read corrects any
//! single-replica fault pattern, and the `corrected` list reports exactly
//! the faulted bit positions that actually flipped the stored value.

use std::collections::BTreeSet;

use ambit_repro::core::{AmbitMemory, TmrVector};
use ambit_repro::dram::{AapMode, CellFault, DramGeometry, TimingParams};
use proptest::prelude::*;

fn memory() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn bits_from_seed(bits: usize, seed: u64) -> Vec<bool> {
    let mut x = seed | 1;
    (0..bits)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any campaign of stuck-at faults confined to ONE replica is fully
    /// masked by voting, and `corrected` is exactly the set of positions
    /// where the stuck value differs from the stored data.
    #[test]
    fn voted_read_corrects_any_single_replica_campaign(
        data_seed in any::<u64>(),
        replica in 0usize..3,
        fault_bits in prop::collection::btree_set(0usize..128, 1..16),
        stuck_one in any::<bool>(),
    ) {
        let mut mem = memory();
        let bits = mem.row_bits();
        let data = bits_from_seed(bits, data_seed);
        let tmr = TmrVector::alloc(&mut mem, bits).unwrap();
        tmr.write(&mut mem, &data).unwrap();

        let fault = if stuck_one {
            CellFault::StuckAtOne
        } else {
            CellFault::StuckAtZero
        };
        let victim = tmr.replicas()[replica];
        for &bit in &fault_bits {
            mem.inject_fault(victim, bit, fault).unwrap();
        }
        // Re-store so the stuck cells take effect on the stored values.
        tmr.write(&mut mem, &data).unwrap();

        let read = tmr.read_voted(&mem).unwrap();
        prop_assert_eq!(&read.data, &data, "a single faulty replica never wins the vote");

        // Exactness: corrected must list precisely the faulted positions
        // whose stored value actually flipped — no more, no less.
        let expect: BTreeSet<usize> = fault_bits
            .iter()
            .copied()
            .filter(|&b| data[b] != stuck_one)
            .collect();
        let got: BTreeSet<usize> = read.corrected.iter().copied().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(read.corrected.len(), expect.len(), "no duplicate reports");
    }

    /// Scrubbing a single-replica fault campaign repairs every reported
    /// bit; persistent disagreement after the scrub identifies exactly the
    /// stuck (permanent) cells.
    #[test]
    fn scrub_heals_transients_and_exposes_permanents(
        data_seed in any::<u64>(),
        fault_bits in prop::collection::btree_set(0usize..128, 1..8),
    ) {
        let mut mem = memory();
        let bits = mem.row_bits();
        let data = bits_from_seed(bits, data_seed);
        let tmr = TmrVector::alloc(&mut mem, bits).unwrap();
        tmr.write(&mut mem, &data).unwrap();
        let victim = tmr.replicas()[0];
        for &bit in &fault_bits {
            mem.inject_fault(victim, bit, CellFault::StuckAtOne).unwrap();
        }
        tmr.write(&mut mem, &data).unwrap();

        let repaired = tmr.scrub(&mut mem).unwrap();
        let flipped: BTreeSet<usize> =
            fault_bits.iter().copied().filter(|&b| !data[b]).collect();
        prop_assert_eq!(repaired, flipped.len());

        // Stuck cells re-corrupt immediately: the post-scrub read reports
        // them again (they are permanent), and the voted data stays right.
        let read = tmr.read_voted(&mem).unwrap();
        let got: BTreeSet<usize> = read.corrected.iter().copied().collect();
        prop_assert_eq!(got, flipped);
        prop_assert_eq!(read.data, data);
    }
}
