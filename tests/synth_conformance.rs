//! Exhaustive truth-table conformance for the boolean synthesis pipeline.
//!
//! Every one of the 256 3-input boolean functions is compiled through
//! `ambit-core::synth`, executed on the simulated device through the batch
//! engine, and compared bit-for-bit against the truth table itself — the
//! CPU golden model. Input vectors are laid out so that bit position `p`
//! of input `j` holds `(p >> j) & 1`, which cycles through all `2^n`
//! assignments along the row, so a single 128-bit row exercises the full
//! truth table (16× over for 3 inputs). A sampled sweep extends the same
//! check to 4- and 5-input functions, and every compiled plan is pinned
//! under the tiny geometry's per-subarray data-row budget.
//!
//! The driver's allocator is a bump allocator (`free` invalidates handles
//! but never reclaims rows), so each test allocates one scratch pool sized
//! to the worst plan in its sweep and reuses it across tables.

use ambit_repro::core::{
    synthesize, AmbitMemory, BatchBuilder, BitVectorHandle, BoolFunc, IssuePolicy,
    SubarrayLayout, SynthOptions, SynthProgram,
};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};

fn memory(geometry: DramGeometry) -> AmbitMemory {
    AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped)
}

/// D-group rows per subarray in the strict tiny geometry — the budget
/// every generated plan must fit (inputs + output + scratch co-located).
fn tiny_data_budget() -> usize {
    SubarrayLayout::new(DramGeometry::tiny().rows_per_subarray).data_rows()
}

/// Input pattern for input `j`: bit `p` is `(p >> j) & 1`, cycling through
/// every assignment of `n` inputs along the row.
fn input_pattern(j: usize, bits: usize) -> Vec<bool> {
    (0..bits).map(|p| p >> j & 1 == 1).collect()
}

/// What the truth table says the output row must hold under the cycling
/// input pattern.
fn golden_output(table: u64, n: usize, bits: usize) -> Vec<bool> {
    (0..bits)
        .map(|p| {
            let idx = p as u64 & ((1 << n) - 1);
            table >> idx & 1 == 1
        })
        .collect()
}

/// Runs `plan` on `mem` through the batch engine under `policy` and
/// returns the device's output row. `pool` is the shared scratch pool.
fn run_on_device(
    mem: &mut AmbitMemory,
    plan: &SynthProgram,
    inputs: &[BitVectorHandle],
    pool: &[BitVectorHandle],
    out: BitVectorHandle,
    policy: IssuePolicy,
) -> Vec<bool> {
    let mut batch = BatchBuilder::new();
    plan.emit_into(&mut batch, inputs, &pool[..plan.scratch_rows()], &[out])
        .expect("emit");
    mem.execute_batch(&batch, policy).expect("execute");
    mem.read_bits(out).expect("readback")
}

/// Allocates `n` co-located input rows carrying the cycling patterns, an
/// output row, and a scratch pool of `pool_rows` rows.
fn device_rows(
    mem: &mut AmbitMemory,
    n: usize,
    pool_rows: usize,
) -> (Vec<BitVectorHandle>, BitVectorHandle, Vec<BitVectorHandle>) {
    let bits = mem.row_bits();
    let inputs: Vec<BitVectorHandle> =
        (0..n).map(|_| mem.alloc(bits).expect("input alloc")).collect();
    for (j, &h) in inputs.iter().enumerate() {
        mem.write_bits(h, &input_pattern(j, bits)).expect("input write");
    }
    let out = mem.alloc(bits).expect("output alloc");
    let pool: Vec<BitVectorHandle> =
        (0..pool_rows).map(|_| mem.alloc(bits).expect("scratch alloc")).collect();
    (inputs, out, pool)
}

#[test]
fn all_256_three_input_tables_conform_on_device() {
    let plans: Vec<SynthProgram> = (0..256u64)
        .map(|table| {
            let func = BoolFunc::from_table(3, table).expect("table");
            synthesize(&[func], &SynthOptions::default()).expect("synthesize")
        })
        .collect();
    let pool_rows = plans.iter().map(SynthProgram::scratch_rows).max().unwrap();
    // The whole working set — 3 inputs, 1 output, and the worst plan's
    // scratch — must co-locate inside one tiny subarray's data rows.
    assert!(
        pool_rows + 4 <= tiny_data_budget(),
        "{pool_rows} scratch rows blow the {}-row tiny budget",
        tiny_data_budget()
    );

    let mut mem = memory(DramGeometry::tiny());
    let bits = mem.row_bits();
    let (inputs, out, pool) = device_rows(&mut mem, 3, pool_rows);
    for (table, plan) in plans.iter().enumerate() {
        let table = table as u64;
        // Every 16th table additionally runs the serial and threaded batch
        // paths and the eager driver; the rest use the bank-parallel
        // batch engine.
        let policies: &[IssuePolicy] = if table.is_multiple_of(16) {
            &[
                IssuePolicy::Serial,
                IssuePolicy::BankParallel,
                IssuePolicy::BankParallelThreaded,
            ]
        } else {
            &[IssuePolicy::BankParallel]
        };
        let want = golden_output(table, 3, bits);
        for &policy in policies {
            let got = run_on_device(&mut mem, plan, &inputs, &pool, out, policy);
            assert_eq!(
                got, want,
                "table {table:#x} diverges from its truth table under {policy:?}"
            );
        }
        if table.is_multiple_of(16) {
            plan.run_eager(&mut mem, &inputs, &pool[..plan.scratch_rows()], &[out])
                .expect("eager run");
            assert_eq!(
                mem.read_bits(out).unwrap(),
                want,
                "table {table:#x} diverges on the eager path"
            );
        }
    }
}

#[test]
fn sampled_four_and_five_input_tables_conform_on_device() {
    // 5 inputs + output + worst-case scratch exceed one tiny subarray, so
    // this sweep runs on a taller variant; the compiled plans themselves
    // are still pinned under the tiny data-row budget.
    let mut mem = memory(DramGeometry {
        rows_per_subarray: 64,
        ..DramGeometry::tiny()
    });
    let bits = mem.row_bits();
    for n in [4usize, 5] {
        let minterms = 1u32 << n;
        assert!(bits >= 1 << n, "row too short to cover all assignments");
        // A fixed multiplicative stride gives a deterministic, spread-out
        // sample of the 2^2^n table space.
        let tables: Vec<u64> = (0..24u64)
            .map(|k| {
                k.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(k)
                    & ((1u128 << minterms) - 1) as u64
            })
            .collect();
        let plans: Vec<SynthProgram> = tables
            .iter()
            .map(|&table| {
                let func = BoolFunc::from_table(n, table).expect("table");
                synthesize(&[func], &SynthOptions::default()).expect("synthesize")
            })
            .collect();
        let pool_rows = plans.iter().map(SynthProgram::scratch_rows).max().unwrap();
        for (&table, plan) in tables.iter().zip(&plans) {
            assert!(
                plan.scratch_rows() <= tiny_data_budget(),
                "{n}-input table {table:#x}: {} scratch rows blow the tiny budget",
                plan.scratch_rows()
            );
        }
        let (inputs, out, pool) = device_rows(&mut mem, n, pool_rows);
        for (&table, plan) in tables.iter().zip(&plans) {
            let got =
                run_on_device(&mut mem, plan, &inputs, &pool, out, IssuePolicy::BankParallel);
            assert_eq!(
                got,
                golden_output(table, n, bits),
                "{n}-input table {table:#x} diverges from its truth table"
            );
        }
    }
}

#[test]
fn bitwise_only_lowering_conforms_on_device() {
    // The maj-free lowering (the shape the resilient executor accepts)
    // must compute the same function as the native-Maj3 schedule.
    let opts = SynthOptions { bitwise_only: true, ..SynthOptions::default() };
    let tables: Vec<u64> = (0..256u64).step_by(7).collect();
    let plans: Vec<SynthProgram> = tables
        .iter()
        .map(|&table| {
            let func = BoolFunc::from_table(3, table).expect("table");
            synthesize(&[func], &opts).expect("synthesize")
        })
        .collect();
    let pool_rows = plans.iter().map(SynthProgram::scratch_rows).max().unwrap();

    let mut mem = memory(DramGeometry {
        rows_per_subarray: 64,
        ..DramGeometry::tiny()
    });
    let bits = mem.row_bits();
    let (inputs, out, pool) = device_rows(&mut mem, 3, pool_rows);
    for (&table, plan) in tables.iter().zip(&plans) {
        assert!(plan.is_bitwise_only(), "bitwise_only must eliminate Maj3 steps");
        let got = run_on_device(&mut mem, plan, &inputs, &pool, out, IssuePolicy::BankParallel);
        assert_eq!(
            got,
            golden_output(table, 3, bits),
            "bitwise-only table {table:#x} diverges from its truth table"
        );
    }
}
