//! Property-based equivalence of the compiler-generated bit-serial
//! arithmetic kernels: for random lane counts, widths, and data, the
//! synthesized add/sub/compare/popcount paths must agree with the
//! hand-written `arith` kernels and with a scalar CPU reference, and a
//! bitwise-only synthesized full adder must survive fault-armed execution
//! through the resilient executor (golden equality unless the executor
//! declares the run degraded).

use ambit_repro::apps::arith::BitSlicedVector;
use ambit_repro::apps::synth_arith;
use ambit_repro::core::{
    synthesize, AmbitMemory, BoolFunc, IssuePolicy, ResilientConfig, ResilientExecutor,
    SlotRef, SynthOptions, SynthStep,
};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use proptest::prelude::*;

/// Taller-than-tiny geometry: the driver's bump allocator never reclaims
/// rows, and each equivalence case allocates both the hand-written and the
/// synthesized kernel's working sets.
fn memory() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry {
            subarrays_per_bank: 4,
            rows_per_subarray: 128,
            ..DramGeometry::tiny()
        },
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn values(lanes: usize, width: usize, seed: u64) -> Vec<u32> {
    let mask = if width >= 32 { u32::MAX } else { (1u32 << width) - 1 };
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u32 & mask
        })
        .collect()
}

fn policy_strategy() -> impl Strategy<Value = IssuePolicy> {
    prop_oneof![
        Just(IssuePolicy::Serial),
        Just(IssuePolicy::BankParallel),
        Just(IssuePolicy::BankParallelThreaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Synthesized ripple add ≡ hand-written add ≡ scalar add mod 2^width.
    #[test]
    fn synth_add_matches_hand_written_and_scalar(
        lanes in 1usize..40,
        width in 1usize..9,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        policy in policy_strategy(),
    ) {
        let mut mem = memory();
        let va = values(lanes, width, seed_a);
        let vb = values(lanes, width, seed_b);
        let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        a.write(&mut mem, &va).unwrap();
        b.write(&mut mem, &vb).unwrap();

        let (hand, _) = a.add(&mut mem, &b).unwrap();
        let (synth, _) = synth_arith::add_synth(&mut mem, &a, &b, policy).unwrap();
        let hand = hand.read(&mem).unwrap();
        let synth = synth.read(&mem).unwrap();
        let mask = (1u32 << width) - 1;
        for i in 0..lanes {
            let scalar = va[i].wrapping_add(vb[i]) & mask;
            prop_assert_eq!(hand[i], scalar, "hand-written add, lane {}", i);
            prop_assert_eq!(synth[i], scalar, "synthesized add, lane {}", i);
        }
    }

    /// Synthesized subtract ≡ hand-written subtract ≡ scalar mod 2^width.
    #[test]
    fn synth_sub_matches_hand_written_and_scalar(
        lanes in 1usize..40,
        width in 1usize..9,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        policy in policy_strategy(),
    ) {
        let mut mem = memory();
        let va = values(lanes, width, seed_a);
        let vb = values(lanes, width, seed_b);
        let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        a.write(&mut mem, &va).unwrap();
        b.write(&mut mem, &vb).unwrap();

        let (hand, _) = a.sub(&mut mem, &b).unwrap();
        let (synth, _) = synth_arith::sub_synth(&mut mem, &a, &b, policy).unwrap();
        let hand = hand.read(&mem).unwrap();
        let synth = synth.read(&mem).unwrap();
        let mask = (1u32 << width) - 1;
        for i in 0..lanes {
            let scalar = va[i].wrapping_sub(vb[i]) & mask;
            prop_assert_eq!(hand[i], scalar, "hand-written sub, lane {}", i);
            prop_assert_eq!(synth[i], scalar, "synthesized sub, lane {}", i);
        }
    }

    /// Synthesized compare ≡ hand-written compare ≡ scalar `<` mask.
    #[test]
    fn synth_compare_matches_hand_written_and_scalar(
        lanes in 1usize..40,
        width in 1usize..9,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        policy in policy_strategy(),
    ) {
        let mut mem = memory();
        let va = values(lanes, width, seed_a);
        // Nudge some lanes into equality so the eq-chain path is exercised.
        let mut vb = values(lanes, width, seed_b);
        for i in (0..lanes).step_by(3) {
            vb[i] = va[i];
        }
        let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        let b = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        a.write(&mut mem, &va).unwrap();
        b.write(&mut mem, &vb).unwrap();

        let (hand, _) = a.compare_lt(&mut mem, &b).unwrap();
        let (synth, _) = synth_arith::compare_lt_synth(&mut mem, &a, &b, policy).unwrap();
        let hand = mem.read_bits(hand).unwrap();
        let synth = mem.read_bits(synth).unwrap();
        for i in 0..lanes {
            let scalar = va[i] < vb[i];
            prop_assert_eq!(hand[i], scalar, "hand-written compare, lane {}", i);
            prop_assert_eq!(synth[i], scalar, "synthesized compare, lane {}", i);
        }
    }

    /// Synthesized popcount ≡ hand-written popcount ≡ scalar count_ones.
    #[test]
    fn synth_popcount_matches_hand_written_and_scalar(
        lanes in 1usize..40,
        width in 1usize..9,
        seed in any::<u64>(),
        policy in policy_strategy(),
    ) {
        let mut mem = memory();
        let va = values(lanes, width, seed);
        let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
        a.write(&mut mem, &va).unwrap();

        let (hand, _) = a.popcount(&mut mem).unwrap();
        let (synth, _) = synth_arith::popcount_synth(&mut mem, &a, policy).unwrap();
        let hand = hand.read(&mem).unwrap();
        let synth = synth.read(&mem).unwrap();
        for i in 0..lanes {
            let scalar = va[i].count_ones();
            prop_assert_eq!(hand[i], scalar, "hand-written popcount, lane {}", i);
            prop_assert_eq!(synth[i], scalar, "synthesized popcount, lane {}", i);
        }
    }

    /// A bitwise-only synthesized full adder, rippled step-by-step through
    /// the fault-armed resilient executor, still produces the scalar sum
    /// unless the executor declares the run degraded.
    #[test]
    fn fault_armed_resilient_runs_recover_the_synthesized_adder(
        width in 1usize..5,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        fault_per_mille in 0u32..50,
    ) {
        // sum = a ^ b ^ cin, carry-out = maj(a, b, cin); bitwise_only
        // lowers away Maj3, the one step shape the resilient front end
        // rejects.
        let sum = BoolFunc::from_table(3, 0x96).unwrap();
        let carry = BoolFunc::from_table(3, 0xE8).unwrap();
        let opts = SynthOptions { bitwise_only: true, ..SynthOptions::default() };
        let plan = synthesize(&[sum, carry], &opts).unwrap();
        prop_assert!(plan.is_bitwise_only());

        let fault_rate = f64::from(fault_per_mille) / 1000.0;
        let mut mem = memory();
        if fault_rate > 0.0 {
            mem.set_tra_fault_rate(fault_rate).unwrap();
        }
        let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let lanes = bits;
        let va = values(lanes, width, seed_a);
        let vb = values(lanes, width, seed_b);
        let slice = |vals: &[u32], j: usize| -> Vec<bool> {
            vals.iter().map(|&v| v >> j & 1 == 1).collect()
        };

        // Vertical layout by hand: one resilient row per bit position.
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut r = Vec::new();
        for j in 0..width {
            let (ha, hb, hr) =
                (exec.alloc(bits).unwrap(), exec.alloc(bits).unwrap(), exec.alloc(bits).unwrap());
            exec.write(ha, &slice(&va, j)).unwrap();
            exec.write(hb, &slice(&vb, j)).unwrap();
            a.push(ha);
            b.push(hb);
            r.push(hr);
        }
        let carry = exec.alloc(bits).unwrap();
        exec.write(carry, &vec![false; bits]).unwrap();
        let scratch: Vec<_> =
            (0..plan.scratch_rows()).map(|_| exec.alloc(bits).unwrap()).collect();

        for j in 0..width {
            let resolve = |slot: SlotRef| match slot {
                SlotRef::Input(0) => a[j],
                SlotRef::Input(1) => b[j],
                SlotRef::Input(2) => carry,
                SlotRef::Input(_) => unreachable!("full adder reads 3 inputs"),
                SlotRef::Scratch(s) => scratch[s],
                SlotRef::Output(0) => r[j],
                SlotRef::Output(1) => carry,
                SlotRef::Output(_) => unreachable!("full adder writes 2 outputs"),
            };
            for step in plan.steps() {
                let SynthStep::Bitwise { op, src1, src2, dst } = *step else {
                    panic!("bitwise-only plan contains a Maj3 step");
                };
                exec.bitwise(op, resolve(src1), src2.map(resolve), resolve(dst)).unwrap();
            }
        }

        if !exec.is_degraded() {
            let mask = (1u32 << width) - 1;
            let mut got = vec![0u32; lanes];
            for (j, &rj) in r.iter().enumerate() {
                let bits = exec.read(rj).unwrap();
                for (i, &bit) in bits.iter().enumerate() {
                    got[i] |= u32::from(bit) << j;
                }
            }
            for i in 0..lanes {
                let scalar = va[i].wrapping_add(vb[i]) & mask;
                prop_assert_eq!(got[i], scalar, "recovered adder, lane {}", i);
            }
        }
        // Internal consistency: any detected fault must be accounted for.
        let report = *exec.report();
        if report.faults_detected > 0 {
            prop_assert!(
                report.retries + report.cpu_fallbacks + u64::from(report.corrected_bits > 0) > 0,
                "faults detected but no recovery recorded"
            );
        }
    }
}
