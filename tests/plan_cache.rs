//! Regression tests for the driver's compiled-plan cache: repeat ops must
//! hit, `free()` must evict exactly the entries whose op references the
//! freed handle (a cached program embedding a freed handle must never
//! bypass unknown-handle validation, while unrelated plans stay warm), and
//! the hit/miss statistics must account for every planning call exactly.

use ambit_repro::core::{
    synthesize, AmbitMemory, BatchBuilder, BitwiseOp, BoolFunc, IssuePolicy, SynthOptions,
};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};

fn tiny() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

#[test]
fn repeat_ops_hit_and_stats_account_for_every_plan() {
    let mut mem = tiny();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &vec![true; bits]).unwrap();
    mem.poke_bits(b, &vec![false; bits]).unwrap();
    assert_eq!(mem.plan_cache_stats(), (0, 0), "cache starts empty");

    // First issue compiles (miss), the repeats reuse the plan (hits).
    for _ in 0..5 {
        mem.bitwise(BitwiseOp::Xor, a, Some(b), d).unwrap();
    }
    assert_eq!(mem.plan_cache_stats(), (4, 1));

    // Any field of the op key — opcode or operand — is a distinct entry.
    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    mem.bitwise(BitwiseOp::Xor, b, Some(a), d).unwrap();
    assert_eq!(mem.plan_cache_stats(), (4, 3));

    // Cached execution must still compute the right value.
    mem.bitwise(BitwiseOp::Xor, a, Some(b), d).unwrap();
    assert_eq!(mem.popcount(d).unwrap(), bits, "1 XOR 0 = 1 per bit");
    assert_eq!(mem.plan_cache_stats(), (5, 3));
}

#[test]
fn batch_execution_shares_the_same_cache() {
    let mut mem = tiny();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &vec![true; bits]).unwrap();
    mem.poke_bits(b, &vec![true; bits]).unwrap();

    let mut batch = BatchBuilder::new();
    batch.bitwise(BitwiseOp::And, a, Some(b), d);
    mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
    let (hits_after_batch, misses_after_batch) = mem.plan_cache_stats();
    assert_eq!(misses_after_batch, 1, "batch planning populates the cache");

    // The eager path reuses the plan the batch compiled.
    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    assert_eq!(mem.plan_cache_stats(), (hits_after_batch + 1, 1));
}

#[test]
fn synthesized_plans_hit_the_cache_on_reexecution() {
    // A compiler-generated program expands to several BatchOps; re-running
    // the same program over the same handles must be all cache hits — the
    // synthesis layer adds no new planning on the hot path.
    let mut mem = tiny();
    let bits = mem.row_bits();
    // xor3: a distinctly multi-step function (two Maj-free xors).
    let func = BoolFunc::from_table(3, 0x96).unwrap();
    let plan = synthesize(&[func], &SynthOptions::default()).unwrap();
    assert!(plan.steps().len() > 1, "xor3 must take several steps");

    let inputs: Vec<_> = (0..3).map(|_| mem.alloc(bits).unwrap()).collect();
    for &h in &inputs {
        mem.poke_bits(h, &vec![true; bits]).unwrap();
    }
    let scratch: Vec<_> = (0..plan.scratch_rows()).map(|_| mem.alloc(bits).unwrap()).collect();
    let out = mem.alloc(bits).unwrap();

    let mut batch = BatchBuilder::new();
    plan.emit_into(&mut batch, &inputs, &scratch, &[out]).unwrap();
    mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
    let (hits_cold, misses_cold) = mem.plan_cache_stats();
    assert_eq!(
        misses_cold as usize,
        batch.op_views().len(),
        "a cold synthesized batch compiles every step"
    );

    // Same program, same handles: every step is a warm hit.
    mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
    let (hits_warm, misses_warm) = mem.plan_cache_stats();
    assert_eq!(misses_warm, misses_cold, "re-execution must not re-plan");
    assert_eq!(
        (hits_warm - hits_cold) as usize,
        batch.op_views().len(),
        "every synthesized step must hit on re-execution"
    );

    // The eager path shares the same cache entries.
    plan.run_eager(&mut mem, &inputs, &scratch, &[out]).unwrap();
    let (hits_eager, misses_eager) = mem.plan_cache_stats();
    assert_eq!(misses_eager, misses_cold);
    assert_eq!((hits_eager - hits_warm) as usize, batch.op_views().len());
}

#[test]
fn free_evicts_referencing_plans_and_stale_handles_are_rejected() {
    let mut mem = tiny();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &vec![true; bits]).unwrap();
    mem.poke_bits(b, &vec![true; bits]).unwrap();

    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    assert_eq!(mem.plan_cache_stats(), (1, 1));

    mem.free(b).unwrap();
    // The same-shape op must NOT serve the stale cached plan: the freed
    // handle has to fail unknown-handle validation.
    assert!(
        mem.bitwise(BitwiseOp::And, a, Some(b), d).is_err(),
        "freed operand must be rejected, not served from cache"
    );
    // Double-free is a stale-handle error too.
    assert!(mem.free(b).is_err());

    // A new-shape op on still-live handles compiles fresh (a miss, not a
    // stale hit).
    let (hits_before, misses_before) = mem.plan_cache_stats();
    mem.bitwise(BitwiseOp::Not, a, None, d).unwrap();
    let (hits, misses) = mem.plan_cache_stats();
    assert_eq!(hits, hits_before, "new shape must not hit");
    assert_eq!(misses, misses_before + 1);
}

#[test]
fn free_keeps_unrelated_cached_plans_warm() {
    let mut mem = tiny();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    let x = mem.alloc(bits).unwrap();
    let y = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &vec![true; bits]).unwrap();
    mem.poke_bits(b, &vec![true; bits]).unwrap();
    mem.poke_bits(x, &vec![true; bits]).unwrap();

    // Warm two independent plans: one referencing `b`, one not.
    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    mem.bitwise(BitwiseOp::Not, x, None, y).unwrap();
    assert_eq!(mem.plan_cache_stats(), (0, 2));

    // Eviction is targeted: freeing `b` must drop only the AND plan.
    mem.free(b).unwrap();
    mem.bitwise(BitwiseOp::Not, x, None, y).unwrap();
    assert_eq!(
        mem.plan_cache_stats(),
        (1, 2),
        "unrelated plan must survive the free and hit, not reset to cold"
    );

    // The evicted shape's handle really is gone.
    assert!(mem.bitwise(BitwiseOp::And, a, Some(b), d).is_err());

    // Freeing a destination handle also evicts the plans that wrote it.
    mem.free(y).unwrap();
    assert!(mem.bitwise(BitwiseOp::Not, x, None, y).is_err());
    let (hits, misses) = mem.plan_cache_stats();
    assert_eq!((hits, misses), (1, 2), "failed plans count neither way");
}
