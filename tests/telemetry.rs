//! Cross-crate telemetry integration: the unified registry must agree
//! with the analytic energy model, replay deterministically under a
//! seeded fault campaign, and export well-formed Prometheus/JSONL.

use ambit_repro::core::{
    AmbitController, AmbitMemory, BitwiseOp, RecoveryReport, ResilientConfig,
    ResilientExecutor, RowAddress,
};
use ambit_repro::dram::{
    AapMode, BankId, CampaignConfig, CellFault, DramGeometry, EnergyModel, FaultCampaign,
    TimingParams, DEFAULT_TRACE_CAPACITY,
};
use ambit_repro::telemetry::{json::Json, Registry};

/// Runs one op on a telemetry-instrumented controller at the paper's
/// Table 3 configuration and returns the metrics-side energy in nJ/KB.
fn metered_nj_per_kb(op: BitwiseOp) -> f64 {
    let geometry = DramGeometry::ddr3_module();
    let mut ctrl =
        AmbitController::new(geometry, TimingParams::ddr3_1333(), AapMode::Overlapped);
    let registry = Registry::default();
    ctrl.set_telemetry(registry.clone());
    let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
    ctrl.execute(op, BankId::zero(), 0, RowAddress::D(0), src2, RowAddress::D(2))
        .expect("standard program executes");
    let snap = registry
        .histogram_snapshot("ambit_command_energy_nj", &[])
        .expect("energy histogram registered");
    snap.sum / (geometry.row_bytes as f64 / 1024.0)
}

#[test]
fn metered_energy_matches_analytic_table3_within_one_percent() {
    let m = EnergyModel::ddr3_1333();
    let aap = |w1: usize, w2: usize| m.activate_nj(w1) + m.activate_nj(w2) + m.precharge_nj();
    let ap = |w: usize| m.activate_nj(w) + m.precharge_nj();
    let row_kb = 8.0; // ddr3_module has 8 KB rows
    // Analytic Table 3 values from the Figure 8 program structures.
    let cases = [
        (BitwiseOp::Copy, aap(1, 1) / row_kb),
        (BitwiseOp::And, (3.0 * aap(1, 1) + aap(3, 1)) / row_kb),
        (
            BitwiseOp::Xor,
            (3.0 * aap(1, 2) + 2.0 * ap(3) + aap(1, 1) + aap(3, 1)) / row_kb,
        ),
    ];
    for (op, analytic) in cases {
        let metered = metered_nj_per_kb(op);
        let err = (metered - analytic).abs() / analytic;
        assert!(
            err < 0.01,
            "{op:?}: metered {metered:.4} nJ/KB vs analytic {analytic:.4} ({:.2}% off)",
            err * 100.0
        );
    }
}

/// The seeded workload used by the determinism tests: clean ops, then a
/// stuck cell forcing a remap, then a catastrophic rate forcing
/// degradation.
fn seeded_campaign_run() -> (Registry, RecoveryReport) {
    let geometry = DramGeometry::tiny();
    let campaign = FaultCampaign::plan(
        CampaignConfig {
            seed: 7,
            base_tra_rate: 0.001,
            weak_cells_per_subarray: 2,
            decay_probability: 1.0,
            first_eligible_row: 8,
            ..CampaignConfig::default()
        },
        &geometry,
    )
    .expect("campaign plans");
    let mut mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    mem.reserve_spare_rows(2).expect("spares reserved");
    let mut exec = ResilientExecutor::with_campaign(mem, ResilientConfig::default(), campaign)
        .expect("campaign applies");
    let registry = Registry::default();
    exec.set_telemetry(registry.clone());

    let bits = exec.memory().row_bits();
    let a = exec.alloc(bits).unwrap();
    let b = exec.alloc(bits).unwrap();
    let out = exec.alloc(bits).unwrap();
    exec.write(a, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>())
        .unwrap();
    exec.write(b, &(0..bits).map(|i| i % 3 == 0).collect::<Vec<_>>())
        .unwrap();
    for _ in 0..6 {
        exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
    }
    let victim = exec.replicas(out).unwrap()[0];
    exec.memory_mut()
        .inject_fault(victim, 1, CellFault::StuckAtOne)
        .unwrap();
    exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
    exec.memory_mut().set_tra_fault_rate(0.26).unwrap();
    exec.bitwise(BitwiseOp::Or, a, Some(b), out).unwrap();
    (registry, *exec.report())
}

#[test]
fn seeded_campaign_counters_equal_the_report_and_replay_exactly() {
    let (reg1, report1) = seeded_campaign_run();
    let (reg2, report2) = seeded_campaign_run();

    // Deterministic replay: two runs from the same seed agree bit for bit.
    assert_eq!(report1, report2);
    assert_eq!(reg1.render_prometheus(), reg2.render_prometheus());
    assert_eq!(reg1.export_jsonl(), reg2.export_jsonl());

    // The counters are exactly the cumulative report.
    let value = |name: &str| reg1.counter_value(name, &[]).unwrap();
    assert_eq!(value("ambit_resilient_ops_total"), report1.ops);
    assert_eq!(
        value("ambit_resilient_faults_detected_total"),
        report1.faults_detected
    );
    assert_eq!(value("ambit_resilient_retries_total"), report1.retries);
    assert_eq!(value("ambit_resilient_remaps_total"), report1.remaps);
    assert_eq!(value("ambit_resilient_scrubs_total"), report1.scrubs);
    assert_eq!(
        value("ambit_resilient_cpu_fallbacks_total"),
        report1.cpu_fallbacks
    );
    assert_eq!(
        value("ambit_resilient_corrected_bits_total"),
        report1.corrected_bits
    );
    assert_eq!(value("ambit_resilient_refreshes_total"), report1.refreshes);
    assert_eq!(
        value("ambit_resilient_decay_flips_total"),
        report1.decay_flips
    );
    assert_eq!(
        reg1.gauge_value("ambit_resilient_degraded", &[]),
        Some(1.0)
    );

    // The workload is constructed to hit every recovery path.
    assert_eq!(report1.ops, 8);
    assert!(report1.remaps >= 1, "stuck cell must be remapped: {report1:?}");
    assert!(report1.retries >= 1, "26% rate must force retries: {report1:?}");
    assert!(report1.degraded, "26% rate must degrade the device");

    // Each recovery action left a trace event.
    let events = reg1.events();
    let count = |name: &str| events.iter().filter(|e| e.name == name).count() as u64;
    assert_eq!(count("resilient.retry"), report1.retries);
    assert_eq!(count("resilient.remap"), report1.remaps);
    assert_eq!(count("resilient.degrade"), 1);
}

#[test]
fn ring_trace_is_always_on_through_the_whole_stack() {
    let mut mem = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &vec![true; bits]).unwrap();
    mem.poke_bits(b, &vec![true; bits]).unwrap();
    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();

    // Without opting into full tracing, the bounded ring still holds the
    // most recent commands.
    let timer = mem.controller().timer();
    assert!(timer.trace().is_none(), "full trace stays opt-in");
    let recent = timer.recent_trace();
    assert!(!recent.is_empty());
    assert!(recent.len() <= DEFAULT_TRACE_CAPACITY);
    // Entries are in issue order.
    for pair in recent.windows(2) {
        assert!(pair[0].at_ps <= pair[1].at_ps);
    }
}

#[test]
fn prometheus_and_jsonl_exports_are_well_formed() {
    let (reg, _) = seeded_campaign_run();

    let prom = reg.render_prometheus();
    // Every exposed family carries HELP and TYPE headers.
    for name in [
        "ambit_acts_total",
        "ambit_wordlines_raised",
        "ambit_command_energy_nj",
        "ambit_ops_total",
        "ambit_op_latency_ns",
        "ambit_resilient_retries_total",
    ] {
        assert!(prom.contains(&format!("# HELP {name} ")), "missing HELP for {name}");
        assert!(prom.contains(&format!("# TYPE {name} ")), "missing TYPE for {name}");
    }
    assert!(prom.contains("ambit_wordlines_raised_bucket{le=\"+Inf\"}"));

    // Every JSONL line parses and carries the span/event envelope.
    let jsonl = reg.export_jsonl();
    assert!(!jsonl.is_empty());
    let mut spans = 0;
    let mut events = 0;
    for line in jsonl.lines() {
        let doc = Json::parse(line).expect("each trace line is valid JSON");
        let name = doc.get("name").and_then(Json::as_str).expect("has a name");
        assert!(!name.is_empty());
        match doc.get("type").and_then(Json::as_str) {
            Some("span") => {
                spans += 1;
                let start = doc.get("start_ns").and_then(Json::as_u64).unwrap();
                let end = doc.get("end_ns").and_then(Json::as_u64).unwrap();
                assert!(end >= start, "span {name} runs backwards");
            }
            Some("event") => {
                events += 1;
                doc.get("at_ns").and_then(Json::as_u64).expect("event timestamp");
            }
            other => panic!("unexpected trace record type {other:?}"),
        }
    }
    assert!(spans > 0, "driver and resilient spans recorded");
    assert!(events > 0, "recovery events recorded");
}
