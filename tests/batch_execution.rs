//! Integration tests for the batched, bank-parallel execution engine:
//! batched results must be byte-identical to serial execution for random op
//! DAGs, a batch of bank-independent ops must actually run bank-parallel
//! (paper Section 7.1's all-banks assumption), and regular memory traffic
//! must interleave with AAP streams on one timer (Section 5.5.2).

use ambit_repro::core::{
    AllocGroup, AmbitMemory, BatchBuilder, BitVectorHandle, BitwiseOp, IssuePolicy,
};
use ambit_repro::dram::{
    AapMode, DramGeometry, FrFcfsScheduler, MemoryRequest, TimingParams,
};
use ambit_repro::telemetry::Registry;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tiny() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

const OPS: [BitwiseOp; 7] = [
    BitwiseOp::Not,
    BitwiseOp::And,
    BitwiseOp::Or,
    BitwiseOp::Nand,
    BitwiseOp::Nor,
    BitwiseOp::Xor,
    BitwiseOp::Xnor,
];

/// One randomly drawn batch entry over a handle pool.
#[derive(Debug, Clone)]
enum DagOp {
    Bitwise(BitwiseOp, usize, Option<usize>, usize),
    Maj3(usize, usize, usize, usize),
    Fold(BitwiseOp, Vec<usize>, usize),
}

fn random_dag(rng: &mut ChaCha8Rng, pool: usize, len: usize) -> Vec<DagOp> {
    (0..len)
        .map(|_| match rng.gen_range(0u32..8) {
            6 => DagOp::Maj3(
                rng.gen_range(0..pool),
                rng.gen_range(0..pool),
                rng.gen_range(0..pool),
                rng.gen_range(0..pool),
            ),
            7 => {
                let k = rng.gen_range(2..4usize);
                DagOp::Fold(
                    if rng.gen() { BitwiseOp::And } else { BitwiseOp::Or },
                    (0..k).map(|_| rng.gen_range(0..pool)).collect(),
                    rng.gen_range(0..pool),
                )
            }
            _ => {
                let op = OPS[rng.gen_range(0..OPS.len())];
                let src2 = (op.source_count() == 2).then(|| rng.gen_range(0..pool));
                DagOp::Bitwise(op, rng.gen_range(0..pool), src2, rng.gen_range(0..pool))
            }
        })
        .collect()
}

/// Builds two identical memories with a shared handle pool and random
/// contents; handles are identical because allocation order is.
fn mirrored_pools(seed: u64, pool: usize) -> (AmbitMemory, AmbitMemory, Vec<BitVectorHandle>) {
    let mut a = tiny();
    let mut b = tiny();
    let bits = 2 * a.row_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
    let handles: Vec<BitVectorHandle> = (0..pool)
        .map(|_| {
            let ha = a.alloc(bits).unwrap();
            let hb = b.alloc(bits).unwrap();
            assert_eq!(ha, hb, "mirrored allocation order");
            let data: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
            a.poke_bits(ha, &data).unwrap();
            b.poke_bits(hb, &data).unwrap();
            ha
        })
        .collect();
    (a, b, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole correctness property: for a random DAG of bulk ops
    /// (including in-place writes, shared sources, maj3, and folds), a
    /// bank-parallel batch produces bit-for-bit the state that executing
    /// the same ops serially through the eager entry points produces.
    #[test]
    fn batch_is_byte_identical_to_serial(seed in any::<u64>(), len in 1usize..10) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pool = 6;
        let dag = random_dag(&mut rng, pool, len);
        let (mut batched, mut serial, h) = mirrored_pools(seed, pool);

        let mut batch = BatchBuilder::new();
        for op in &dag {
            match op {
                DagOp::Bitwise(op, s1, s2, d) => {
                    batch.bitwise(*op, h[*s1], s2.map(|i| h[i]), h[*d]);
                }
                DagOp::Maj3(a, b, c, d) => {
                    batch.maj3(h[*a], h[*b], h[*c], h[*d]);
                }
                DagOp::Fold(op, srcs, d) => {
                    let srcs: Vec<_> = srcs.iter().map(|&i| h[i]).collect();
                    batch.fold(*op, &srcs, h[*d]);
                }
            }
        }
        let receipt = batched.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
        prop_assert_eq!(receipt.per_op.len(), dag.len());

        for op in &dag {
            match op {
                DagOp::Bitwise(op, s1, s2, d) => {
                    serial.bitwise(*op, h[*s1], s2.map(|i| h[i]), h[*d]).unwrap();
                }
                DagOp::Maj3(a, b, c, d) => {
                    serial.bitwise_maj3(h[*a], h[*b], h[*c], h[*d]).unwrap();
                }
                DagOp::Fold(op, srcs, d) => {
                    let srcs: Vec<_> = srcs.iter().map(|&i| h[i]).collect();
                    serial.bitwise_fold(*op, &srcs, h[*d]).unwrap();
                }
            }
        }
        for (i, &handle) in h.iter().enumerate() {
            prop_assert_eq!(
                batched.peek_bits(handle).unwrap(),
                serial.peek_bits(handle).unwrap(),
                "vector {} diverged", i
            );
        }
    }
}

/// Pins `chains` single-chunk vector groups to distinct banks and queues
/// `per_bank` independent AND ops per bank, submitted round-robin across
/// banks so every bank's pipeline fills early.
fn bank_chains(
    mem: &mut AmbitMemory,
    chains: usize,
    per_bank: usize,
) -> (BatchBuilder, Vec<BitVectorHandle>) {
    let bits = mem.row_bits();
    let mut srcs = Vec::new();
    let mut dsts = Vec::new();
    for g in 0..chains {
        // Group g's chunk 0 lands in bank g (the allocator offsets group
        // sequences by the group id).
        let group = AllocGroup(g as u32);
        let a = mem.alloc_in_group(bits, group).unwrap();
        let b = mem.alloc_in_group(bits, group).unwrap();
        mem.poke_bits(a, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>()).unwrap();
        mem.poke_bits(b, &(0..bits).map(|i| i % 3 == 0).collect::<Vec<_>>()).unwrap();
        srcs.push((a, b));
        dsts.push(
            (0..per_bank)
                .map(|_| mem.alloc_in_group(bits, group).unwrap())
                .collect::<Vec<_>>(),
        );
    }
    let mut batch = BatchBuilder::new();
    let mut outs = Vec::new();
    // Transposed on purpose: submit round-robin across banks, not
    // chain-by-chain, so every bank has work queued from the start.
    #[allow(clippy::needless_range_loop)]
    for j in 0..per_bank {
        for g in 0..chains {
            let (a, b) = srcs[g];
            batch.bitwise(BitwiseOp::And, a, Some(b), dsts[g][j]);
            outs.push(dsts[g][j]);
        }
    }
    (batch, outs)
}

#[test]
fn bank_parallel_batch_meets_speedup_envelope() {
    // 8 chains × 8 ops on the paper's 8-bank module. Acceptance criteria:
    // makespan ≤ 1.25× the slowest single-bank chain, speedup ≥ 0.8·B over
    // serial issue, results identical.
    let chains = 8;
    let per_bank = 8;

    let mut mem = AmbitMemory::ddr3_module();
    let (batch, outs) = bank_chains(&mut mem, chains, per_bank);
    let parallel = mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
    let parallel_results: Vec<_> = outs.iter().map(|&h| mem.peek_bits(h).unwrap()).collect();
    assert_eq!(parallel.waves, 1, "independent ops form one wave");
    assert_eq!(parallel.banks_used(), chains);

    let mut mem = AmbitMemory::ddr3_module();
    let (batch, outs) = bank_chains(&mut mem, chains, per_bank);
    let serial = mem.execute_batch(&batch, IssuePolicy::Serial).unwrap();
    let serial_results: Vec<_> = outs.iter().map(|&h| mem.peek_bits(h).unwrap()).collect();
    assert_eq!(parallel_results, serial_results, "policies agree bit-for-bit");

    // A single bank's chain, on a fresh timeline (all chains are
    // symmetric, so one stands in for the slowest).
    let mut mem = AmbitMemory::ddr3_module();
    let (batch, _) = bank_chains(&mut mem, 1, per_bank);
    let chain = mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();

    let makespan = parallel.makespan_ps() as f64;
    let chain_ps = chain.makespan_ps() as f64;
    assert!(
        makespan <= 1.25 * chain_ps,
        "batch makespan {makespan} vs 1.25× chain {chain_ps}"
    );
    let speedup = serial.makespan_ps() as f64 / makespan;
    assert!(
        speedup >= 0.8 * chains as f64,
        "speedup {speedup:.2} < 0.8×{chains}"
    );
}

#[test]
fn traffic_interleaves_with_batch_on_one_timer() {
    // Paper Section 5.5.2: the controller interleaves AAPs with ordinary
    // requests. Regular reads arrive while a batch runs; both make
    // progress on the same timeline and neither corrupts the other.
    let mut mem = AmbitMemory::ddr3_module();
    let (batch, outs) = bank_chains(&mut mem, 4, 8);

    let mut traffic = FrFcfsScheduler::new();
    for i in 0..32u64 {
        traffic.enqueue(MemoryRequest {
            arrival_ps: i * 30_000, // one per 30 ns, inside the batch window
            bank: (i % 4) as usize, // the same banks the AAP streams use
            row: (i % 8) as usize,
            is_write: i % 7 == 0,
        });
    }
    // One request far in the future: must stay queued, not be serviced.
    traffic.enqueue(MemoryRequest {
        arrival_ps: 1 << 40,
        bank: 0,
        row: 0,
        is_write: false,
    });

    let receipt = mem
        .execute_batch_with_traffic(&batch, IssuePolicy::BankParallel, &mut traffic)
        .unwrap();

    let stats = traffic.stats();
    assert_eq!(stats.serviced, 32, "all arrived traffic serviced");
    assert_eq!(traffic.pending(), 1, "future arrival left queued");
    // Interleaved, not appended: the last completions land within a hair of
    // the batch's own end (the final drain may run a few requests past the
    // last precharge), nowhere near the extra ~32 serial row cycles that
    // running the traffic after the batch would cost.
    assert!(
        stats.makespan_ps <= receipt.total.end_ps + receipt.total.end_ps / 10,
        "traffic makespan {} vs batch end {}",
        stats.makespan_ps,
        receipt.total.end_ps
    );

    // AAP results are still correct with rows being opened and closed
    // around them by the traffic.
    let bits = mem.row_bits();
    let expect = (0..bits).filter(|i| i % 2 == 0 && i % 3 == 0).count();
    for out in outs {
        assert_eq!(mem.popcount(out).unwrap(), expect);
    }
}

#[test]
fn dependent_waves_execute_in_order() {
    // acc = (a & b) | c | acc — a three-wave chain through one accumulator,
    // mixed with an unrelated op that shares wave 0.
    let mut mem = tiny();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let c = mem.alloc(bits).unwrap();
    let t = mem.alloc(bits).unwrap();
    let acc = mem.alloc(bits).unwrap();
    let other = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>()).unwrap();
    mem.poke_bits(b, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>()).unwrap();
    mem.poke_bits(c, &(0..bits).map(|i| i % 2 == 1).collect::<Vec<_>>()).unwrap();
    mem.poke_bits(acc, &vec![false; bits]).unwrap();

    let mut batch = BatchBuilder::new();
    batch.bitwise(BitwiseOp::And, a, Some(b), t);
    batch.bitwise(BitwiseOp::Not, a, None, other); // independent: wave 0
    batch.bitwise(BitwiseOp::Or, t, Some(c), t);
    batch.bitwise(BitwiseOp::Or, acc, Some(t), acc);
    let receipt = mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
    assert_eq!(receipt.waves, 3);
    assert_eq!(mem.popcount(acc).unwrap(), bits, "(even & even) | odd = all");

    // Wave barriers show up in the timing: each wave starts at or after
    // the previous wave's last precharge.
    assert!(receipt.per_op[2].start_ps >= receipt.per_op[0].end_ps);
    assert!(receipt.per_op[3].start_ps >= receipt.per_op[2].end_ps);
}

#[test]
fn consecutive_batches_report_disjoint_per_batch_busy_deltas() {
    // `BatchReceipt::bank_busy_ps` is documented as the per-batch delta of
    // the timer's cumulative busy attribution. Pin that down: two
    // consecutive batches on disjoint banks must report disjoint non-zero
    // busy entries — a batch that never touched a pipeline reads zero for
    // it even though an earlier batch kept it busy.
    let mut mem = AmbitMemory::ddr3_module();
    let bits = mem.row_bits();
    let build = |mem: &mut AmbitMemory, groups: &[u32]| {
        let mut batch = BatchBuilder::new();
        for &g in groups {
            let group = AllocGroup(g);
            let a = mem.alloc_in_group(bits, group).unwrap();
            let b = mem.alloc_in_group(bits, group).unwrap();
            let d = mem.alloc_in_group(bits, group).unwrap();
            mem.poke_bits(a, &vec![true; bits]).unwrap();
            mem.poke_bits(b, &vec![true; bits]).unwrap();
            batch.bitwise(BitwiseOp::And, a, Some(b), d);
        }
        batch
    };

    // Group g's single chunk lands in bank g, so the two batches occupy
    // banks {0, 1} and {2, 3} respectively.
    let batch = build(&mut mem, &[0, 1]);
    let first = mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();
    let batch = build(&mut mem, &[2, 3]);
    let second = mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();

    let busy = |receipt: &ambit_repro::core::BatchReceipt, bank: usize| {
        receipt.bank_busy_ps.get(bank).copied().unwrap_or(0)
    };
    for bank in 0..2 {
        assert!(busy(&first, bank) > 0, "first batch busy on bank {bank}");
        assert_eq!(
            busy(&second, bank),
            0,
            "second batch never touched bank {bank}; its delta must be zero"
        );
    }
    for bank in 2..4 {
        assert_eq!(
            busy(&first, bank),
            0,
            "first batch never touched bank {bank}; its delta must be zero"
        );
        assert!(busy(&second, bank) > 0, "second batch busy on bank {bank}");
    }
}

#[test]
fn batch_emits_span_and_occupancy_gauges() {
    let mut mem = AmbitMemory::ddr3_module();
    mem.set_telemetry(Registry::new());
    let (batch, _) = bank_chains(&mut mem, 4, 2);
    let receipt = mem.execute_batch(&batch, IssuePolicy::BankParallel).unwrap();

    let reg = mem.telemetry().unwrap().clone();
    let spans = reg.spans();
    let batch_span = spans
        .iter()
        .find(|s| s.name == "driver.batch")
        .expect("driver.batch span recorded");
    assert_eq!(
        batch_span.duration_ns(),
        receipt.total.end_ps / 1000 - receipt.total.start_ps / 1000,
        "span covers the batch window in simulated ns"
    );
    assert_eq!(
        reg.counter_value("ambit_ops_total", &[("op", "bbop_and")]),
        Some(8)
    );
    // Per-bank occupancy gauges: the four used banks carry busy time, an
    // untouched bank reads zero.
    for bank in 0..4 {
        let v = reg
            .gauge_value("ambit_batch_bank_busy_ns", &[("bank", &bank.to_string())])
            .expect("gauge registered");
        assert!(v > 0.0, "bank {bank} occupancy {v}");
        assert!(
            (v - receipt.bank_busy_ps[bank] as f64 / 1000.0).abs() < 1e-9,
            "gauge matches receipt attribution"
        );
    }
    assert_eq!(
        reg.gauge_value("ambit_batch_bank_busy_ns", &[("bank", "5")]),
        Some(0.0)
    );
}
