//! Verifies the exact DRAM command sequences Ambit programs emit, against
//! the paper's Figure 8 — at the command-trace level, the way a logic
//! analyzer on the DDR bus would see them.

use ambit_conformance::TraceChecker;
use ambit_repro::core::{AmbitController, BitwiseOp, RowAddress};
use ambit_repro::dram::{AapMode, BankId, DramGeometry, TimingParams, TraceCommand};

fn traced_controller() -> AmbitController {
    let mut ctrl = AmbitController::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    ctrl.timer_mut().set_tracing(true);
    ctrl
}

fn wordline_counts(ctrl: &AmbitController) -> Vec<(usize, &'static str)> {
    ctrl.timer()
        .trace()
        .expect("tracing enabled")
        .iter()
        .map(|e| match e.command {
            TraceCommand::Activate { wordlines, .. } => (wordlines, "ACT"),
            TraceCommand::Precharge => (0, "PRE"),
            TraceCommand::Read => (0, "RD"),
            TraceCommand::Write => (0, "WR"),
        })
        .collect()
}

/// Every trace in this file must also satisfy the generic DDR sequencing
/// invariants enforced by the conformance checker.
fn assert_trace_clean(ctrl: &AmbitController) {
    let checker = TraceChecker::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
    checker
        .assert_clean(ctrl.timer().trace().expect("tracing enabled"))
        .unwrap();
}

#[test]
fn and_trace_matches_figure_8a() {
    let mut ctrl = traced_controller();
    ctrl.execute(
        BitwiseOp::And,
        BankId::zero(),
        0,
        RowAddress::D(0),
        Some(RowAddress::D(1)),
        RowAddress::D(2),
    )
    .unwrap();
    // Figure 8a: AAP(Di,B0); AAP(Dj,B1); AAP(C0,B2); AAP(B12,Dk).
    // On the bus: three plain AAPs then ACT(3 wordlines), ACT, PRE.
    let expect = vec![
        (1, "ACT"), (1, "ACT"), (0, "PRE"), // AAP(Di, B0)
        (1, "ACT"), (1, "ACT"), (0, "PRE"), // AAP(Dj, B1)
        (1, "ACT"), (1, "ACT"), (0, "PRE"), // AAP(C0, B2)
        (3, "ACT"), (1, "ACT"), (0, "PRE"), // AAP(B12 → TRA, Dk)
    ];
    assert_eq!(wordline_counts(&ctrl), expect);
    assert_trace_clean(&ctrl);
}

#[test]
fn not_trace_matches_section_5_2() {
    let mut ctrl = traced_controller();
    ctrl.execute(
        BitwiseOp::Not,
        BankId::zero(),
        0,
        RowAddress::D(0),
        None,
        RowAddress::D(1),
    )
    .unwrap();
    // Section 5.2: ACTIVATE Di; ACTIVATE B5; PRECHARGE;
    //              ACTIVATE B4; ACTIVATE Dk; PRECHARGE.
    let expect = vec![
        (1, "ACT"), (1, "ACT"), (0, "PRE"),
        (1, "ACT"), (1, "ACT"), (0, "PRE"),
    ];
    assert_eq!(wordline_counts(&ctrl), expect);
    assert_trace_clean(&ctrl);
}

#[test]
fn xor_trace_matches_figure_8c() {
    let mut ctrl = traced_controller();
    ctrl.execute(
        BitwiseOp::Xor,
        BankId::zero(),
        0,
        RowAddress::D(0),
        Some(RowAddress::D(1)),
        RowAddress::D(2),
    )
    .unwrap();
    // Figure 8c: AAP(Di,B8); AAP(Dj,B9); AAP(C0,B10); AP(B14); AP(B15);
    //            AAP(C1,B2); AAP(B12,Dk).
    // B8/B9/B10 raise two wordlines; B14/B15/B12 raise three.
    let expect = vec![
        (1, "ACT"), (2, "ACT"), (0, "PRE"), // AAP(Di, B8)
        (1, "ACT"), (2, "ACT"), (0, "PRE"), // AAP(Dj, B9)
        (1, "ACT"), (2, "ACT"), (0, "PRE"), // AAP(C0, B10)
        (3, "ACT"), (0, "PRE"),             // AP(B14)
        (3, "ACT"), (0, "PRE"),             // AP(B15)
        (1, "ACT"), (1, "ACT"), (0, "PRE"), // AAP(C1, B2)
        (3, "ACT"), (1, "ACT"), (0, "PRE"), // AAP(B12, Dk)
    ];
    assert_eq!(wordline_counts(&ctrl), expect);
    assert_trace_clean(&ctrl);
}

#[test]
fn trace_timing_matches_receipt() {
    let mut ctrl = traced_controller();
    let receipt = ctrl
        .execute(
            BitwiseOp::And,
            BankId::zero(),
            0,
            RowAddress::D(0),
            Some(RowAddress::D(1)),
            RowAddress::D(2),
        )
        .unwrap();
    let trace = ctrl.timer().trace().unwrap();
    assert_eq!(trace.first().unwrap().at_ps, receipt.start_ps);
    // The receipt's end is tRP after the final PRECHARGE's issue.
    let last_pre = trace.last().unwrap();
    assert_eq!(last_pre.at_ps + 10_000, receipt.end_ps);
    assert_trace_clean(&ctrl);
}
