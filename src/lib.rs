//! # ambit-repro — reproduction of the Ambit in-DRAM accelerator
//!
//! A full-system reproduction of *Ambit: In-Memory Accelerator for Bulk
//! Bitwise Operations Using Commodity DRAM Technology* (Seshadri et al.,
//! MICRO-50 2017), built from scratch in Rust. This facade crate re-exports
//! the workspace so examples and downstream users need a single dependency:
//!
//! * [`dram`] — the commodity-DRAM substrate (functional arrays with
//!   multi-wordline activation, DDR timing, energy, RowClone, FR-FCFS);
//! * [`circuit`] — analog models (charge sharing, sense-amp transients,
//!   process-variation Monte Carlo);
//! * [`core`] — the Ambit accelerator itself (row address groups, AAP/AP
//!   programs, controller, bbop ISA, subarray-aware driver);
//! * [`sys`] — baseline machines, caches, CPU timing, coherence;
//! * [`apps`] — the paper's application studies (bitmap indices,
//!   BitWeaving, sets, BitFunnel, masked init, XOR cipher, DNA filtering);
//! * [`telemetry`] — counters, simulated-time spans, Prometheus/JSONL
//!   exporters wired through the controller, driver, and resilient
//!   executor.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-reproduced results.
//!
//! # Quick start
//!
//! ```
//! use ambit_repro::core::{AmbitMemory, BitwiseOp};
//! use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
//!
//! let mut mem = AmbitMemory::new(
//!     DramGeometry::tiny(),
//!     TimingParams::ddr3_1600(),
//!     AapMode::Overlapped,
//! );
//! let bits = mem.row_bits();
//! let a = mem.alloc(bits)?;
//! let b = mem.alloc(bits)?;
//! let out = mem.alloc(bits)?;
//! mem.poke_bits(a, &vec![true; bits])?;
//! mem.poke_bits(b, &vec![false; bits])?;
//! mem.bitwise(BitwiseOp::Nand, a, Some(b), out)?;
//! assert_eq!(mem.popcount(out)?, bits);
//! # Ok::<(), ambit_repro::core::AmbitError>(())
//! ```

#![warn(missing_docs)]

/// The commodity-DRAM substrate (re-export of `ambit-dram`).
pub mod dram {
    pub use ambit_dram::*;
}

/// Analog circuit models (re-export of `ambit-circuit`).
pub mod circuit {
    pub use ambit_circuit::*;
}

/// The Ambit accelerator (re-export of `ambit-core`).
pub mod core {
    pub use ambit_core::*;
}

/// System-level models and baselines (re-export of `ambit-sys`).
pub mod sys {
    pub use ambit_sys::*;
}

/// Application studies (re-export of `ambit-apps`).
pub mod apps {
    pub use ambit_apps::*;
}

/// Counters, spans, and exporters (re-export of `ambit-telemetry`).
pub mod telemetry {
    pub use ambit_telemetry::*;
}
