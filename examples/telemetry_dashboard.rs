//! One registry observing the whole Ambit stack: a seeded, deterministic
//! run that exercises every telemetry layer and dumps the results.
//!
//! The workload walks the resilient executor through its three regimes —
//! clean execution, a stuck-at cell that gets remapped to a spare row, and
//! a catastrophic TRA fault rate that degrades the device to CPU
//! execution — while a single [`Registry`] collects:
//!
//! * per-bank ACT/PRE/RD/WR counters and the wordlines-raised histogram
//!   from the command timer,
//! * per-command and per-operation energy/latency histograms,
//! * `ambit_resilient_*` recovery counters mirroring the
//!   [`RecoveryReport`], plus retry/remap/degrade trace events,
//! * `ambit_driver_plan_cache_{hits,misses}` from the compiled-program
//!   cache, and `ambit_charge_share_path_total{path=...}` showing which
//!   activations resolved word-parallel versus through the bit-serial
//!   scalar reference (fault-armed subarrays, like this campaign's, pin
//!   to the scalar path for replay determinism),
//! * `ambit_pool_*` counters from the persistent executor pool behind the
//!   OS-threaded batch path: jobs executed, cold worker spawns versus warm
//!   dispatches onto already-running workers, and the queue-wait
//!   histogram,
//! * the analytic Figure 9 envelope as gauges, for comparison on the same
//!   scrape.
//!
//! Everything downstream of the device model is denominated in *simulated*
//! DRAM time, so those metrics are bit-for-bit reproducible. The
//! `ambit_pool_*` scheduling metrics are the one exception: worker spawn
//! versus reuse and queue-wait times are real OS-scheduler behavior and
//! may shift between runs. Run with:
//! `cargo run --release --example telemetry_dashboard`

use ambit_repro::core::{
    AllocGroup, AmbitConfig, AmbitError, AmbitMemory, BatchBuilder, BitwiseOp, IssuePolicy,
    ResilientConfig, ResilientExecutor,
};
use ambit_repro::dram::{
    AapMode, CampaignConfig, CellFault, DramGeometry, FaultCampaign, TimingParams,
};
use ambit_repro::telemetry::Registry;

fn main() -> Result<(), AmbitError> {
    let registry = Registry::default();
    let geometry = DramGeometry::tiny();

    // A seeded campaign: weak cells armed for retention decay, planted
    // deterministically. Same seed, same run, same metrics — always.
    let campaign = FaultCampaign::plan(
        CampaignConfig {
            seed: 2017,
            base_tra_rate: 0.0005,
            weak_cells_per_subarray: 2,
            decay_probability: 1.0,
            first_eligible_row: 8,
            ..CampaignConfig::default()
        },
        &geometry,
    )?;

    let mut mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    mem.reserve_spare_rows(2)?;
    let mut exec =
        ResilientExecutor::with_campaign(mem, ResilientConfig::default(), campaign)?;
    exec.set_telemetry(registry.clone());

    // Two row-sized chunks per vector, so the allocator stripes them
    // across both banks and the per-bank counters show real fan-out.
    let bits = 2 * exec.memory().row_bits();
    let a = exec.alloc(bits)?;
    let b = exec.alloc(bits)?;
    let out = exec.alloc(bits)?;
    exec.write(a, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>())?;
    exec.write(b, &(0..bits).map(|i| i % 3 == 0).collect::<Vec<_>>())?;

    // Phase 1: a healthy mixed workload (transient TRA faults possible at
    // the campaign's base rate, retention decay ticking underneath).
    for op in [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor, BitwiseOp::Nand] {
        for _ in 0..4 {
            exec.bitwise(op, a, Some(b), out)?;
        }
    }

    // Phase 2: a stuck-at cell on one replica of the destination — the
    // executor classifies it permanent and remaps the row to a spare.
    let victim = exec.replicas(out)?[0];
    exec.memory_mut().inject_fault(victim, 1, CellFault::StuckAtOne)?;
    exec.bitwise(BitwiseOp::And, a, Some(b), out)?;

    // Phase 3: Table 2's ±25 % process variation (26 % failures per TRA):
    // the executor must degrade to CPU execution to stay correct.
    exec.memory_mut().set_tra_fault_rate(0.26)?;
    exec.bitwise(BitwiseOp::Or, a, Some(b), out)?;
    exec.bitwise(BitwiseOp::Xor, a, Some(b), out)?;

    // Phase 4: the persistent executor pool behind the OS-threaded batch
    // path. Force a multi-worker pool so the phase behaves the same on a
    // single-core host (where the default pool would degrade threaded
    // issue to the serial path and leave the counters at zero), then run
    // two threaded batches back to back — the second is served entirely by
    // warm workers, which is the reuse `ambit_pool_warm_dispatches_total`
    // exists to show.
    let mut batch_mem =
        AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    batch_mem.set_pool_threads(4);
    batch_mem.set_telemetry(registry.clone());
    let row = batch_mem.row_bits();
    // One operand triple per bank (groups stripe across banks), so each
    // wave carries two independent chunks and genuinely fans out.
    let mut lanes = Vec::new();
    for g in 0..2 {
        let x = batch_mem.alloc_in_group(row, AllocGroup(g))?;
        let y = batch_mem.alloc_in_group(row, AllocGroup(g))?;
        let z = batch_mem.alloc_in_group(row, AllocGroup(g))?;
        batch_mem.write_bits(x, &(0..row).map(|i| i % 2 == 0).collect::<Vec<_>>())?;
        batch_mem.write_bits(y, &(0..row).map(|i| i % 5 == 0).collect::<Vec<_>>())?;
        lanes.push((x, y, z));
    }
    for round in 0..2 {
        if round > 0 {
            // Give the workers a moment to park between batches so the
            // second round is served warm instead of racing the workers
            // back to the idle queue.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let mut batch = BatchBuilder::new();
        for &(x, y, z) in &lanes {
            batch.bitwise(BitwiseOp::And, x, Some(y), z);
            batch.bitwise(BitwiseOp::Xor, x, Some(y), z);
        }
        batch_mem.execute_batch(&batch, IssuePolicy::BankParallelThreaded)?;
    }

    // Overlay the analytic Figure 9 envelope on the same registry.
    AmbitConfig::ddr3_module().export_telemetry(&registry)?;

    let report = *exec.report();
    println!("# run summary (deterministic, simulated time)");
    println!(
        "#   ops={} faults_detected={} retries={} remaps={} cpu_fallbacks={} degraded={}",
        report.ops,
        report.faults_detected,
        report.retries,
        report.remaps,
        report.cpu_fallbacks,
        report.degraded
    );
    println!();
    print!("{}", registry.render_prometheus());

    let jsonl = registry.export_jsonl();
    println!();
    println!("# trace export: {} JSONL records (spans + events), first 8:", jsonl.lines().count());
    for line in jsonl.lines().take(8) {
        println!("{line}");
    }
    Ok(())
}
