//! Bank-parallel batched execution: the all-banks throughput claim of the
//! paper's Figure 9, measured instead of assumed.
//!
//! The eager [`AmbitMemory::bitwise`] API issues one operation at a time and
//! waits for it to finish, so an 8-bank module performs like a 1-bank one.
//! [`BatchBuilder`] + [`AmbitMemory::execute_batch`] instead collect a DAG
//! of bulk operations, infer RAW/WAW/WAR hazards, and issue each dependency
//! wave across all banks at once on overlapping per-bank timelines — the
//! shared command/data-bus constraints (tCK, tCCD) stay enforced by the one
//! [`CommandTimer`] underneath.
//!
//! The pipeline here is a bitmap-index conjunction fanned out over every
//! bank: per bank, `hit = (a & b) | c`, then a final dependent reduction
//! wave. The run prints the batch receipt against the serial-issue
//! baseline, the analytic envelope, and the per-bank occupancy gauges the
//! batch recorded in the shared telemetry registry.
//!
//! Everything is denominated in *simulated* DRAM time, so the output is
//! bit-for-bit reproducible. Run with:
//! `cargo run --release --example batch_pipeline`

use ambit_repro::core::{
    AllocGroup, AmbitConfig, AmbitError, AmbitMemory, BatchBuilder, BitwiseOp, IssuePolicy,
};
use ambit_repro::telemetry::Registry;

const PS_PER_NS: u64 = 1_000;

fn build_pipeline(mem: &mut AmbitMemory, banks: usize) -> Result<BatchBuilder, AmbitError> {
    let bits = mem.row_bits();
    let mut batch = BatchBuilder::new();
    for g in 0..banks {
        // One allocation group per bank: group g's first chunks land in
        // bank g, so each group is an independent per-bank working set.
        let group = AllocGroup(g as u32);
        let a = mem.alloc_in_group(bits, group)?;
        let b = mem.alloc_in_group(bits, group)?;
        let c = mem.alloc_in_group(bits, group)?;
        let t = mem.alloc_in_group(bits, group)?;
        let hit = mem.alloc_in_group(bits, group)?;
        mem.poke_bits(a, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>())?;
        mem.poke_bits(b, &(0..bits).map(|i| (i / 3) % 2 == 0).collect::<Vec<_>>())?;
        mem.poke_bits(c, &(0..bits).map(|i| i % 7 == 0).collect::<Vec<_>>())?;

        // Wave 0 in every bank at once; wave 1 waits on wave 0's t.
        batch.bitwise(BitwiseOp::And, a, Some(b), t);
        batch.bitwise(BitwiseOp::Or, t, Some(c), hit);
    }
    Ok(batch)
}

fn main() -> Result<(), AmbitError> {
    let registry = Registry::new();
    let banks = 8;

    // Bank-parallel run on the paper's 8-bank DDR3-1600 module.
    let mut mem = AmbitMemory::ddr3_module();
    mem.set_telemetry(registry.clone());
    let batch = build_pipeline(&mut mem, banks)?;
    let parallel = mem.execute_batch(&batch, IssuePolicy::BankParallel)?;

    // Identical workload, serial issue: the eager-API baseline.
    let mut baseline = AmbitMemory::ddr3_module();
    let batch = build_pipeline(&mut baseline, banks)?;
    let serial = baseline.execute_batch(&batch, IssuePolicy::Serial)?;

    println!("batch: {} ops in {} waves across {} banks", 2 * banks, parallel.waves, parallel.banks_used());
    println!(
        "  bank-parallel makespan: {:>7} ns",
        parallel.makespan_ps() / PS_PER_NS
    );
    println!(
        "  serial-issue makespan:  {:>7} ns",
        serial.makespan_ps() / PS_PER_NS
    );
    println!(
        "  speedup:                {:>9.2}x (ideal {banks}.00x)",
        serial.makespan_ps() as f64 / parallel.makespan_ps() as f64
    );

    // Measured bulk throughput vs the analytic Figure 9 envelope, both in
    // the figure's unit: billions of byte-wide operations per second.
    let config = AmbitConfig::ddr3_module();
    let row_bytes = (mem.row_bits() / 8) as f64;
    let measured_gops =
        (2 * banks) as f64 * row_bytes / (parallel.makespan_ps() as f64 / 1e12) / 1e9;
    let envelope = config.throughput_gops(BitwiseOp::And)?;
    println!(
        "  measured throughput:    {measured_gops:>9.2} GOps/s \
         ({:.0}% of the {envelope:.2} GOps/s analytic envelope)",
        100.0 * measured_gops / envelope
    );

    println!("per-bank occupancy over the batch window:");
    for bank in 0..banks {
        let busy = registry
            .gauge_value("ambit_batch_bank_busy_ns", &[("bank", &bank.to_string())])
            .unwrap_or(0.0);
        let pct = 100.0 * busy * PS_PER_NS as f64 / parallel.makespan_ps() as f64;
        let bar = "#".repeat((pct / 5.0).round() as usize);
        println!("  bank {bank}: {busy:>6.0} ns busy ({pct:>5.1}%) {bar}");
    }

    let span = registry
        .spans()
        .into_iter()
        .find(|s| s.name == "driver.batch")
        .expect("batch span");
    println!(
        "telemetry span `driver.batch`: {} ns, attrs: {:?}",
        span.duration_ns(),
        span.attrs
    );
    Ok(())
}
