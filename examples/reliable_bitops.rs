//! Reliable in-DRAM computation with TMR ECC (the paper's Section 5.4.5):
//! conventional ECC cannot follow data that the memory itself modifies, so
//! Ambit needs a code that is homomorphic over bitwise operations — triple
//! modular redundancy. This example injects the circuit model's predicted
//! TRA fault rate and shows raw vs TMR-protected results.
//!
//! Run with: `cargo run --release --example reliable_bitops`

use ambit_repro::circuit::{run_monte_carlo, CircuitParams};
use ambit_repro::core::{bitwise_tmr, AmbitMemory, BitwiseOp, TmrVector};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);

    // What failure rate does the circuit model predict at ±15% variation?
    let params = CircuitParams::ddr3_55nm();
    let mc = run_monte_carlo(&params, 0.15, 50_000, &mut rng);
    let rate = mc.failure_rate();
    println!(
        "circuit Monte Carlo at ±15% process variation: {:.2}% of TRAs fail\n",
        rate * 100.0
    );

    // Inject that rate into a device and run a bulk AND without protection.
    let mut mem = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    mem.set_tra_fault_rate(rate);
    let bits = mem.row_bits();
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    let a = mem.alloc(bits).unwrap();
    let b = mem.alloc(bits).unwrap();
    let d = mem.alloc(bits).unwrap();
    mem.poke_bits(a, &da).unwrap();
    mem.poke_bits(b, &db).unwrap();
    mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
    let raw = mem.peek_bits(d).unwrap();
    let raw_errors = (0..bits).filter(|&i| raw[i] != (da[i] && db[i])).count();
    println!("raw bulk AND on {bits} bits:   {raw_errors} corrupted bits");

    // The same operation under TMR: three replicas, majority-voted read.
    let ta = TmrVector::alloc(&mut mem, bits).unwrap();
    let tb = TmrVector::alloc(&mut mem, bits).unwrap();
    let td = TmrVector::alloc(&mut mem, bits).unwrap();
    ta.write(&mut mem, &da).unwrap();
    tb.write(&mut mem, &db).unwrap();
    let receipt = bitwise_tmr(&mut mem, BitwiseOp::And, &ta, Some(&tb), &td).unwrap();
    let voted = td.read_voted(&mem).unwrap();
    let tmr_errors = (0..bits)
        .filter(|&i| voted.data[i] != (da[i] && db[i]))
        .count();
    println!(
        "TMR  bulk AND on {bits} bits:   {tmr_errors} corrupted bits ({} silently corrected)",
        voted.corrected.len()
    );
    println!(
        "\ncost of protection: {} AAPs instead of 4 (3x ops, 3x rows) — the paper\n\
         leaves cheaper bitwise-homomorphic ECC as an open problem",
        receipt.aaps
    );
}
