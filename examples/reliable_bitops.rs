//! Reliable in-DRAM computation with TMR ECC (the paper's Section 5.4.5):
//! conventional ECC cannot follow data that the memory itself modifies, so
//! Ambit needs a code that is homomorphic over bitwise operations — triple
//! modular redundancy. This example injects the circuit model's predicted
//! TRA fault rate and shows raw vs TMR-protected vs resiliently-executed
//! results.
//!
//! Run with: `cargo run --release --example reliable_bitops`

use ambit_repro::circuit::{run_monte_carlo, CircuitParams};
use ambit_repro::core::{
    bitwise_tmr, AmbitError, AmbitMemory, BitwiseOp, ResilientConfig, ResilientExecutor,
    TmrVector,
};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), AmbitError> {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);

    // What failure rate does the circuit model predict at ±15% variation?
    let params = CircuitParams::ddr3_55nm();
    let mc = run_monte_carlo(&params, 0.15, 50_000, &mut rng);
    let rate = mc.failure_rate();
    println!(
        "circuit Monte Carlo at ±15% process variation: {:.2}% of TRAs fail\n",
        rate * 100.0
    );

    // Inject that rate into a device and run a bulk AND without protection.
    let mut mem = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    mem.set_tra_fault_rate(rate)?;
    let bits = mem.row_bits();
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

    let a = mem.alloc(bits)?;
    let b = mem.alloc(bits)?;
    let d = mem.alloc(bits)?;
    mem.poke_bits(a, &da)?;
    mem.poke_bits(b, &db)?;
    mem.bitwise(BitwiseOp::And, a, Some(b), d)?;
    let raw = mem.peek_bits(d)?;
    let raw_errors = (0..bits).filter(|&i| raw[i] != (da[i] && db[i])).count();
    println!("raw bulk AND on {bits} bits:       {raw_errors} corrupted bits");

    // The same operation under TMR: three replicas, majority-voted read.
    let ta = TmrVector::alloc(&mut mem, bits)?;
    let tb = TmrVector::alloc(&mut mem, bits)?;
    let td = TmrVector::alloc(&mut mem, bits)?;
    ta.write(&mut mem, &da)?;
    tb.write(&mut mem, &db)?;
    let receipt = bitwise_tmr(&mut mem, BitwiseOp::And, &ta, Some(&tb), &td)?;
    let voted = td.read_voted(&mem)?;
    let tmr_errors = (0..bits)
        .filter(|&i| voted.data[i] != (da[i] && db[i]))
        .count();
    println!(
        "TMR  bulk AND on {bits} bits:       {tmr_errors} corrupted bits ({} silently corrected)",
        voted.corrected.len()
    );
    println!(
        "\ncost of protection: {} AAPs instead of 4 (3x ops, 3x rows) — the paper\n\
         leaves cheaper bitwise-homomorphic ECC as an open problem\n",
        receipt.aaps
    );

    // TMR alone still loses bits whenever two replicas flip at the same
    // position. The resilient executor closes the gap: voted verification,
    // budgeted retries, repair from CPU ground truth, and degradation to
    // the Section 5.4.3 software path when the device is hopeless.
    let mut faulty = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    faulty.set_tra_fault_rate(rate)?;
    let mut exec = ResilientExecutor::new(faulty, ResilientConfig::default());
    let ra = exec.alloc(bits)?;
    let rb = exec.alloc(bits)?;
    let rd = exec.alloc(bits)?;
    exec.write(ra, &da)?;
    exec.write(rb, &db)?;
    let mut wrong = 0usize;
    for _ in 0..8 {
        exec.bitwise(BitwiseOp::And, ra, Some(rb), rd)?;
        let out = exec.read(rd)?;
        wrong += (0..bits).filter(|&i| out[i] != (da[i] && db[i])).count();
    }
    let r = exec.report();
    println!(
        "resilient bulk AND, 8 iterations: {wrong} corrupted bits\n\
         recovery: {} faults detected, {} retries, {} scrubs, {} CPU fallbacks{}",
        r.faults_detected,
        r.retries,
        r.scrubs,
        r.cpu_fallbacks,
        if r.degraded {
            " (degraded to software execution)"
        } else {
            ""
        }
    );
    Ok(())
}
