//! Lane-parallel integer arithmetic from bitwise primitives — the
//! capability the paper's conclusion anticipates ("can enable better
//! design of other applications"): thousands of additions computed at
//! once, with each carry step a single native triple-row activation.
//!
//! Run with: `cargo run --release --example vector_arithmetic`

use ambit_repro::apps::arith::BitSlicedVector;
use ambit_repro::core::AmbitMemory;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut mem = AmbitMemory::ddr3_module();

    let lanes = 100_000;
    let width = 12;
    println!("{lanes} lanes of {width}-bit integers, bit-sliced across DRAM rows\n");

    let a = BitSlicedVector::alloc(&mut mem, lanes, width)?;
    let b = BitSlicedVector::alloc(&mut mem, lanes, width)?;
    let av: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..2048)).collect();
    let bv: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..2048)).collect();
    a.write(&mut mem, &av)?;
    b.write(&mut mem, &bv)?;

    let (sum, receipt) = a.add(&mut mem, &b)?;
    let got = sum.read(&mem)?;
    let correct = (0..lanes)
        .filter(|&l| got[l] == (av[l] + bv[l]) & 0xFFF)
        .count();
    println!(
        "a + b   : {correct}/{lanes} lanes correct  ({} AAPs + {} APs, {:.1} us in DRAM)",
        receipt.aaps,
        receipt.aps,
        receipt.latency_ps() as f64 / 1e6
    );
    assert_eq!(correct, lanes);

    let (diff, _) = a.sub(&mut mem, &b)?;
    let got = diff.read(&mem)?;
    let correct = (0..lanes)
        .filter(|&l| got[l] == av[l].wrapping_sub(bv[l]) & 0xFFF)
        .count();
    println!("a - b   : {correct}/{lanes} lanes correct (two's complement in DRAM)");
    assert_eq!(correct, lanes);

    let (inc, _) = a.add_constant(&mut mem, 1000)?;
    let got = inc.read(&mem)?;
    println!(
        "a + 1000: first lanes {:?} -> {:?}",
        &av[..4],
        &got[..4]
    );

    println!(
        "\nper bit of width: 2 bulk XORs + 1 majority (one TRA program — the DRAM\n\
         physically computes maj) + 1 RowClone copy. Every lane is one bitline;\n\
         the 8-bank module adds {} lanes per pipeline round.",
        8 * 8192 * 8
    );
    Ok(())
}
