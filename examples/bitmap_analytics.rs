//! Bitmap-index analytics (the paper's Section 8.1 scenario): track user
//! activity with per-day bitmaps and answer an engagement query with bulk
//! in-DRAM bitwise operations.
//!
//! Run with: `cargo run --release --example bitmap_analytics`

use ambit_repro::apps::bitmap_index::{run_bitmap_index, BitmapIndexWorkload};
use ambit_repro::core::AmbitMemory;
use ambit_repro::sys::SystemConfig;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    let users = 2 * 1024 * 1024;
    println!("bitmap-index analytics over {} users\n", users);
    println!(
        "query: how many users were active every week for the past w weeks,\n\
         and how many male users were active each week?\n"
    );

    for weeks in [2usize, 3, 4] {
        let workload = BitmapIndexWorkload::figure10(users, weeks);
        let result = run_bitmap_index(&config, AmbitMemory::ddr3_module(), &workload);
        println!(
            "w = {weeks}: {} in-DRAM ops  baseline {:7.2} ms  Ambit {:6.2} ms  speedup {:.1}x",
            result.dram_ops,
            result.baseline_s * 1e3,
            result.ambit_s * 1e3,
            result.speedup()
        );
        println!(
            "       active every week: {} users; male active per week: {:?}",
            result.answer.active_every_week, result.answer.male_active_per_week
        );
    }
    println!("\n(the Ambit path ran functionally on the simulated device and was");
    println!(" cross-checked against the software reference inside each run)");
}
