//! Set algebra three ways (the paper's Section 8.3 scenario): the same
//! m-way union/intersection/difference on a red-black tree, a software
//! bitset, and Ambit-resident bitvectors.
//!
//! Run with: `cargo run --release --example set_operations`

use ambit_repro::apps::{run_setop, SetOperation, SetWorkload};
use ambit_repro::core::AmbitMemory;
use ambit_repro::sys::SystemConfig;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    println!("m = 15 sets over a 512k domain; times normalized to the RB-tree\n");
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>10}",
        "e", "op", "RB-tree", "Bitset", "Ambit"
    );
    for &e in &[16usize, 256, 1024] {
        for op in SetOperation::ALL {
            let workload = SetWorkload::figure12(e);
            let r = run_setop(&config, AmbitMemory::ddr3_module(), &workload, op);
            let (rb, bs, am) = r.normalized();
            println!(
                "{e:>6} {:>14} {rb:>10.2} {bs:>10.2} {am:>10.3}",
                op.to_string()
            );
        }
    }
    println!(
        "\nreading the table: below 1.0 means faster than the RB-tree; the\n\
         bitvector representations pay a fixed full-scan cost, so the tree wins\n\
         for near-empty sets while Ambit dominates once sets carry real data.\n\
         All three implementations returned identical result sets (checked\n\
         element-for-element inside run_setop)."
    );
}
