//! BitFunnel-style web-search document filtering (the paper's
//! Section 8.4.1 scenario): conjunctive queries over Bloom-signature
//! slices, where each slice AND is one bulk in-DRAM operation across the
//! whole corpus at once.
//!
//! Run with: `cargo run --release --example web_search`

use ambit_repro::apps::bitfunnel::DocumentIndex;
use ambit_repro::core::AmbitMemory;
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};

fn main() {
    let mem = AmbitMemory::new(
        DramGeometry {
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 512,
            row_bytes: 64,
            ..DramGeometry::tiny()
        },
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let mut index = DocumentIndex::new(mem, 128, 256);

    let corpus: &[&[&str]] = &[
        &["dram", "bitwise", "accelerator", "micro"],
        &["dram", "refresh", "retention", "reliability"],
        &["cache", "coherence", "protocol", "multicore"],
        &["bitwise", "bloom", "filter", "search"],
        &["web", "search", "ranking", "bloom"],
        &["database", "scan", "bitwise", "simd"],
        &["genome", "alignment", "bitwise", "filter"],
        &["memory", "bandwidth", "bottleneck", "dram"],
    ];
    for doc in corpus {
        index.add_document(doc);
    }
    println!("indexed {} documents as bit-sliced Bloom signatures\n", index.len());

    for query in [
        vec!["bitwise"],
        vec!["dram", "bitwise"],
        vec!["bloom", "search"],
        vec!["cache", "coherence"],
    ] {
        let (candidates, receipt) = index.query(&query);
        let exact = index.exact_matches(&query);
        println!(
            "query {:?}\n  candidates (Bloom, from DRAM): {:?}  [{} slice ANDs in {:.2} us]",
            query,
            candidates,
            receipt.aaps,
            receipt.latency_ps() as f64 / 1e6,
        );
        println!("  exact matches (verification):  {exact:?}");
        for d in &exact {
            assert!(candidates.contains(d), "Bloom filters never drop a match");
        }
    }
    println!("\nevery exact match appeared among the candidates - no false negatives,");
    println!("exactly the guarantee BitFunnel's document filtering relies on");
}
