//! DNA read pre-alignment filtering (the paper's Section 8.4.4 scenario):
//! discard candidate mapping locations with bulk in-DRAM bitwise
//! comparisons before running expensive alignment.
//!
//! Run with: `cargo run --release --example dna_prealignment`

use ambit_repro::apps::dna::{parse_sequence, Base, DnaFilter};
use ambit_repro::core::AmbitMemory;
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_genome(n: usize, seed: u64) -> Vec<Base> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    "ACGT"
        .chars()
        .cycle()
        .take(0)
        .map(Base::from_char)
        .chain((0..n).map(|_| {
            Base::from_char(['A', 'C', 'G', 'T'][rng.gen_range(0..4)])
        }))
        .collect()
}

fn main() {
    let window = 100;
    let genome = random_genome(10_000, 7);
    let mem = AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let mut filter = DnaFilter::new(mem, genome.clone(), window);

    // A read sampled from the genome with two point mutations, plus the
    // hash-based candidate positions a seed index might produce.
    let true_locus = 4321;
    let mut read = genome[true_locus..true_locus + window].to_vec();
    read[10] = match read[10] { Base::A => Base::C, _ => Base::A };
    read[77] = match read[77] { Base::G => Base::T, _ => Base::G };

    let candidates = [17usize, 980, 2222, 4319, 4321, 7777, 9000];
    println!("pre-alignment filter: {window}-base read, threshold 5 mismatches, shift ±2\n");
    let mut survivors = 0;
    for &pos in &candidates {
        let (accepted, best) = filter.filter(&read, pos, 2, 5);
        println!(
            "  candidate {pos:>5}: best mismatches {:>3}  -> {}",
            if best == usize::MAX { 999 } else { best },
            if accepted { "ALIGN (passed filter)" } else { "discarded" }
        );
        if accepted {
            survivors += 1;
        }
    }
    println!(
        "\n{survivors}/{} candidates survive to full alignment; the true locus ({true_locus}) did",
        candidates.len()
    );

    // Show the underlying primitive once.
    let (mis, receipt) = filter.mismatches_at(&read, true_locus);
    println!(
        "\none window comparison = 2 bulk XOR + 1 bulk OR in DRAM \
         ({} AAPs + {} APs); mismatches at the true locus: {mis}",
        receipt.aaps, receipt.aps
    );
    let seq = parse_sequence("ACGT");
    assert_eq!(seq.len(), 4);
}
