//! A full fault-injection campaign against the resilient execution layer.
//!
//! The pipeline mirrors how the paper argues Ambit's reliability end to
//! end: the circuit model (Section 6 / Table 2) measures how often triple
//! row activation fails under process variation; those per-subarray rates
//! seed a deterministic fault campaign (transient TRA flips, stuck-at
//! cells, retention-weak cells); and the resilient executor runs a bulk
//! bitwise workload on the faulty device with detect → retry → remap →
//! degrade recovery, reporting everything it had to do to keep the results
//! exact.
//!
//! Run with: `cargo run --release --example fault_campaign`

use ambit_repro::circuit::{per_subarray_rates, CircuitParams};
use ambit_repro::core::{
    AmbitError, AmbitMemory, BitwiseOp, ResilientConfig, ResilientExecutor,
};
use ambit_repro::dram::{AapMode, CampaignConfig, DramGeometry, FaultCampaign, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), AmbitError> {
    let seed = 2017;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let geometry = DramGeometry::tiny();
    let subarrays = geometry.total_banks() * geometry.subarrays_per_bank;

    // Step 1: measure per-subarray TRA failure rates with the circuit
    // model at ±10 % process variation (paper Table 2: 0.29 %), with ±25 %
    // spatial spread across subarrays.
    let params = CircuitParams::ddr3_55nm();
    let rates = per_subarray_rates(&params, 0.10, 0.25, subarrays, 20_000, &mut rng);
    println!("circuit-measured TRA failure rate per subarray:");
    for (i, r) in rates.iter().enumerate() {
        println!("  subarray {i}: {:.3}%", r * 100.0);
    }

    // Step 2: plan the campaign — measured transient rates plus stuck-at
    // and retention-weak cells, all drawn deterministically from the seed.
    let config = CampaignConfig {
        seed,
        stuck_cells_per_subarray: 2,
        weak_cells_per_subarray: 2,
        decay_probability: 0.02,
        first_eligible_row: 8, // leave the B/C control rows alone
        ..CampaignConfig::default()
    };
    let campaign = FaultCampaign::plan_with_rates(config, &geometry, &rates)?;
    println!(
        "\ncampaign: {} stuck cells, {} subarray fault plans (seed {seed})",
        campaign.stuck_cell_count(),
        campaign.plans().len()
    );

    // Step 3: run a bulk bitwise workload through the resilient executor.
    let mut mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    mem.reserve_spare_rows(2)?;
    let mut exec = ResilientExecutor::with_campaign(mem, ResilientConfig::default(), campaign)?;

    let bits = exec.memory().row_bits() * 2;
    let a = exec.alloc(bits)?;
    let b = exec.alloc(bits)?;
    let dst = exec.alloc(bits)?;
    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
    exec.write(a, &da)?;
    exec.write(b, &db)?;

    let mut wrong = 0usize;
    for op in [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor, BitwiseOp::Nand] {
        for _ in 0..8 {
            exec.bitwise(op, a, Some(b), dst)?;
            let out = exec.read(dst)?;
            let truth: Vec<bool> = da
                .iter()
                .zip(&db)
                .map(|(&x, &y)| op.apply_words(x as u64, y as u64) & 1 == 1)
                .collect();
            wrong += out.iter().zip(&truth).filter(|(o, t)| o != t).count();
        }
    }

    let r = exec.report();
    println!("\nworkload: 32 bulk ops on {bits}-bit vectors — {wrong} wrong bits");
    println!("recovery report:");
    println!("  faults detected:   {}", r.faults_detected);
    println!("  retries:           {}", r.retries);
    println!("  scrubs:            {}", r.scrubs);
    println!("  row remaps:        {}", r.remaps);
    println!("  CPU fallbacks:     {}", r.cpu_fallbacks);
    println!("  corrected bits:    {}", r.corrected_bits);
    println!("  refreshes seen:    {}", r.refreshes);
    println!("  decay flips armed: {}", r.decay_flips);
    println!("  added latency:     {:.1} ns", r.added_latency_ps as f64 / 1000.0);
    println!("  added energy:      {:.1} nJ", r.added_energy_nj);
    println!("  degraded:          {}", r.degraded);
    println!(
        "  spare rows left:   {} (bad rows remapped: {})",
        exec.memory().spare_rows_free(),
        exec.memory().bad_rows().len()
    );
    Ok(())
}
