//! BitWeaving column scan (the paper's Section 8.2 scenario): evaluate
//! `select count(*) from T where c1 <= val <= c2` on a bit-sliced column,
//! first in software, then with bulk in-DRAM operations.
//!
//! Run with: `cargo run --release --example database_scan`

use ambit_repro::apps::bitweaving::{AmbitColumn, BitSlicedColumn, BitWeavingWorkload};
use ambit_repro::core::AmbitMemory;

fn main() {
    let rows = 1 << 20;
    let bits = 12;
    let workload = BitWeavingWorkload { rows, bits, seed: 2024 };
    let (values, c1, c2) = workload.generate();

    println!("table T: {rows} rows, {bits}-bit column, predicate {c1} <= val <= {c2}\n");

    // Software (SIMD-style) scan over the vertical layout.
    let column = BitSlicedColumn::from_values(&values, bits);
    let result = column.scan_between(c1, c2);
    let sw_count: usize = result.iter().map(|w| w.count_ones() as usize).sum();
    println!("software scan:   count(*) = {sw_count}");

    // The same dataflow as bulk in-DRAM operations.
    let mut mem = AmbitMemory::ddr3_module();
    let acol = AmbitColumn::load(&mut mem, &column).expect("load column");
    let (am_count, receipt) = acol.scan_between(&mut mem, c1, c2).expect("scan");
    println!(
        "Ambit scan:      count(*) = {am_count}  ({} AAPs + {} APs, {:.1} us in DRAM)",
        receipt.aaps,
        receipt.aps,
        receipt.latency_ps() as f64 / 1e6
    );
    assert_eq!(sw_count, am_count);

    // Spot-check against a plain row-major filter.
    let naive = values.iter().filter(|&&v| v >= c1 && v <= c2).count();
    assert_eq!(naive, am_count);
    println!("naive filter:    count(*) = {naive}");
    println!(
        "\nselectivity {:.1}% - all three agree",
        100.0 * am_count as f64 / rows as f64
    );
}
