//! Quickstart: allocate bitvectors in Ambit memory, run bulk bitwise
//! operations entirely inside simulated DRAM, and inspect what they cost.
//!
//! Run with: `cargo run --release --example quickstart`

use ambit_repro::core::{AmbitMemory, BitwiseOp};
use ambit_repro::dram::{AapMode, DramGeometry, TimingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An Ambit-enabled DDR3-1600 module: 8 banks, 8 KB rows, split-decoder
    // AAP (49 ns) — the paper's main configuration.
    let mut mem = AmbitMemory::new(
        DramGeometry::ddr3_module(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );

    // Two 1-Mbit vectors (16 DRAM rows each, striped across the 8 banks).
    let bits = 1 << 20;
    let a = mem.alloc(bits)?;
    let b = mem.alloc(bits)?;
    let out = mem.alloc(bits)?;

    mem.poke_bits(a, &(0..bits).map(|i| i % 3 == 0).collect::<Vec<_>>())?;
    mem.poke_bits(b, &(0..bits).map(|i| i % 5 == 0).collect::<Vec<_>>())?;

    println!("Ambit quickstart: 1 Mbit vectors, 8-bank DDR3-1600 module\n");
    for op in [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor, BitwiseOp::Nand] {
        let receipt = mem.bitwise(op, a, Some(b), out)?;
        println!(
            "{:10}  {:3} AAPs + {} APs   {:7.2} us in DRAM   {:6.1} nJ   popcount(out) = {}",
            op.to_string(),
            receipt.aaps,
            receipt.aps,
            receipt.latency_ps() as f64 / 1e6,
            receipt.energy_nj,
            mem.popcount(out)?,
        );
    }

    // NOT uses the dual-contact cells (Ambit-NOT, paper Section 4).
    let receipt = mem.bitwise(BitwiseOp::Not, a, None, out)?;
    println!(
        "{:10}  {:3} AAPs + {} APs   {:7.2} us in DRAM   {:6.1} nJ   popcount(out) = {}",
        "bbop_not",
        receipt.aaps,
        receipt.aps,
        receipt.latency_ps() as f64 / 1e6,
        receipt.energy_nj,
        mem.popcount(out)?,
    );

    // Sanity: the device computed the real thing.
    let expect = (0..bits).filter(|i| i % 3 != 0).count();
    assert_eq!(mem.popcount(out)?, expect);

    println!(
        "\ntotal simulated DRAM energy: {:.2} uJ across {} activations",
        mem.energy_nj() / 1000.0,
        mem.controller().timer().stats().activates,
    );
    println!("every result above was produced by triple-row activations and");
    println!("dual-contact-cell reads in the functional DRAM model - no host ALU involved");
    Ok(())
}
